//! The top-level cycle-accurate simulator.

use crate::activeset::ActiveSet;
use crate::config::SimConfig;
use crate::error::SimError;
use crate::fault::LinkFaults;
use crate::link::LinkLanes;
use crate::message::{SimEvent, TraceEvent};
use crate::metrics::MetricsRegistry;
use crate::router::{CreditSite, Router};
use crate::routing::Routing;
use crate::stats::{SimStats, Snapshot};
use crate::trace::{Record, TraceKind, TraceRecorder, TraceSink};
use crate::watchdog::{StallKind, StallReport};
use noc_ecc::{Decode, Secded};
use noc_types::{Direction, Flit, FlitId, LinkId, Mesh, NodeId, Packet, PacketId, Port, VcId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Record a structured trace event iff tracing is armed. Expands to a
/// single `Option` test on the disabled path and borrows only the
/// `tracer` field, so it is legal while `routers`/`links`/`metrics` are
/// mutably borrowed.
macro_rules! emit {
    ($sim:expr, $cycle:expr, $kind:expr) => {
        if let Some(t) = $sim.tracer.as_mut() {
            t.record($cycle, $kind);
        }
    };
}

/// Anything that injects packets into the network.
pub trait TrafficSource {
    /// Called once per cycle; push the packets to inject this cycle.
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>);

    /// True once the source will never produce another packet (lets
    /// [`Simulator::run_to_quiescence`] terminate).
    fn done(&self) -> bool {
        false
    }

    /// Append this source's resume cursor (RNG state, position counters)
    /// to `out`, for checkpointing. The default writes nothing — correct
    /// for stateless sources like [`NoTraffic`]; stateful sources override
    /// both cursor methods symmetrically.
    fn save_cursor(&self, _out: &mut Vec<u8>) {}

    /// Restore the cursor written by [`TrafficSource::save_cursor`],
    /// consuming exactly the bytes it wrote from the front of `input`.
    fn load_cursor(&mut self, _input: &mut &[u8]) {}

    /// Event-horizon lookahead for [`Simulator::skip_idle_cycles`]: the
    /// earliest cycle `>= now` at which polling this source may either
    /// produce a packet or change its observable state (`done()`), when
    /// polled cycle-by-cycle from `now`. `None` promises the source will
    /// never produce again *and* that `done()` is already at its final
    /// value. The default `Some(now)` declares no lookahead at all, which
    /// disables fast-forward for this source — always correct.
    fn next_injection_at(&self, now: u64) -> Option<u64> {
        Some(now)
    }

    /// Advance internal cursors exactly as if `poll` had been called for
    /// every cycle in `[current, to)` — required so checkpointed source
    /// cursors and `done()` are bit-identical with fast-forward on or
    /// off. Only ever called with `to` at or below the horizon this
    /// source returned from [`TrafficSource::next_injection_at`], so a
    /// correct implementation drops nothing.
    fn skip_to(&mut self, _to: u64) {}
}

/// A source that never injects (for drain phases and unit tests).
pub struct NoTraffic;

impl TrafficSource for NoTraffic {
    fn poll(&mut self, _cycle: u64, _out: &mut Vec<Packet>) {}
    fn done(&self) -> bool {
        true
    }
    fn next_injection_at(&self, _now: u64) -> Option<u64> {
        None
    }
}

/// The simulator: routers, links, injection queues, statistics.
///
/// ```
/// use noc_sim::{SimConfig, Simulator};
/// use noc_sim::sim::TrafficSource;
/// use noc_types::{NodeId, Packet, PacketId, VcId};
///
/// // One four-flit packet from router 0 to router 15.
/// struct One(Option<Packet>);
/// impl TrafficSource for One {
///     fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
///         if cycle == 0 {
///             out.extend(self.0.take());
///         }
///     }
///     fn done(&self) -> bool { self.0.is_none() }
/// }
///
/// let mut sim = Simulator::new(SimConfig::paper());
/// let pkt = Packet::new(PacketId(1), NodeId(0), NodeId(15), VcId(0), 0, 0, 4, 0);
/// let mut src = One(Some(pkt));
/// assert!(sim.run_to_quiescence(500, &mut src));
/// assert_eq!(sim.stats().delivered_packets, 1);
/// // Six hops × the 5-stage pipeline dominate the latency.
/// assert!(sim.stats().avg_latency() >= 30.0);
/// ```
pub struct Simulator {
    pub(crate) cfg: SimConfig,
    pub(crate) mesh: Mesh,
    pub(crate) routing: Routing,
    /// Version counter for `routing`, bumped wherever the routing
    /// function is replaced (explicit swap, quarantine reroute, restore)
    /// so every router's RC memo invalidates lazily. Derived state —
    /// never serialized.
    pub(crate) routing_epoch: u32,
    pub(crate) routers: Vec<Router>,
    /// The link datapath, structure-of-arrays (see [`crate::link`]).
    pub(crate) links: LinkLanes,
    pub(crate) dead_links: Vec<LinkId>,
    /// Injection queues, one per (core, VC class) so a stalled class never
    /// head-of-line blocks another (essential for TDM non-interference).
    /// Indexed `core * vcs + vc`.
    pub(crate) inj_queues: Vec<VecDeque<Flit>>,
    /// Round-robin pointer per core over its VC queues.
    pub(crate) inj_rr: Vec<u8>,
    pub(crate) cycle: u64,
    pub(crate) next_flit_id: u64,
    /// Injection cycle per in-flight packet (latency accounting).
    pub(crate) birth: std::collections::HashMap<noc_types::PacketId, u64>,
    pub(crate) stats: SimStats,
    pub(crate) events: Vec<SimEvent>,
    /// Journey of the traced packet (when `cfg.trace_packet` is set).
    pub(crate) trace: Vec<TraceEvent>,
    pub(crate) poll_buf: Vec<Packet>,
    /// Cycle of the last network progress event (an ejection anywhere, or
    /// an injection-queue flit admitted into a router) — the global
    /// watchdog's heartbeat.
    pub(crate) last_progress_cycle: u64,
    /// Links the retry-budget escalation condemned this cycle; quarantined
    /// at the end of `step` so phase ordering stays undisturbed.
    pub(crate) pending_quarantine: Vec<LinkId>,
    /// Fatal error raised inside `step` (a quarantine disconnected the
    /// mesh); surfaced by the next `try_step`.
    pub(crate) poisoned: Option<SimError>,
    /// Watchdog grace baseline: stall ages are measured from the later of
    /// this and the event's own timestamp, so each intervention
    /// (quarantine, trip) re-arms the detectors instead of re-tripping on
    /// survivors that inherited old timestamps.
    pub(crate) watchdog_armed_at: u64,
    /// Per-link / per-router counters, gauges, and histograms.
    pub(crate) metrics: MetricsRegistry,
    /// Structured event recorder, armed by `cfg.trace`. `None` when
    /// tracing is disabled — the zero-cost path.
    pub(crate) tracer: Option<TraceRecorder>,
    /// Aggregate counter values at the previous snapshot (delivered
    /// flits, retransmissions, uncorrectable faults), for the per-interval
    /// deltas in [`Snapshot`].
    pub(crate) snap_base: (u64, u64, u64),
    /// Per-router activity bits, recomputed each cycle from
    /// [`Router::has_phase_work`] and set eagerly when a phase hands a
    /// router new work (arrival, injection admit): quiescent routers skip
    /// the per-router pipeline phases entirely.
    pub(crate) router_active: Vec<bool>,
    /// `link_dead[i]` mirrors `dead_links` for O(1) hot-path lookup.
    pub(crate) link_dead: Vec<bool>,
    /// Hierarchical superset of `router_active` (see [`crate::activeset`]):
    /// the per-router phases iterate only its set bits. Derived state —
    /// never serialized; rebuilt all-set on construct/restore/re-shard.
    pub(crate) router_set: ActiveSet,
    /// Forward wires that may deliver next P1, indexed by the link's
    /// *destination-partition position* (`dst_pos`). Set at launch,
    /// cleared by the delivering shard.
    pub(crate) fwd_set: ActiveSet,
    /// Reverse wires that may carry ACKs/credits, indexed by the link's
    /// *source-partition position* (`src_pos`). Set at send_ack /
    /// send_credit, cleared once the reverse wire drains empty.
    pub(crate) rev_set: ActiveSet,
    /// Links whose retransmission entries may be non-empty (launch
    /// candidates for P4), indexed by `src_pos`. Set when the ST stage
    /// pushes an entry, cleared when P4 observes the entries empty.
    pub(crate) launch_set: ActiveSet,
    /// Link id → position in the shard-ordered `links_dst` partition
    /// (contiguous ascending range per shard), and the inverse.
    pub(crate) dst_pos: Vec<u16>,
    pub(crate) dst_order: Vec<u16>,
    /// Same permutation pair for the `links_src` partition.
    pub(crate) src_pos: Vec<u16>,
    pub(crate) src_order: Vec<u16>,
    /// Whether [`Simulator::skip_idle_cycles`] may fast-forward (on by
    /// default; `--no-skip` style A/B harnesses turn it off).
    pub(crate) fast_forward: bool,
    /// Cycles fast-forwarded so far. Diagnostic only — deliberately not
    /// in [`SimStats`], so goldens/snapshots are identical with
    /// fast-forward on or off.
    pub(crate) skipped_cycles: u64,
    /// Event counter for the periodic `OvercountDelivered` sabotage hook
    /// (only advanced while that sabotage is armed). Lives on the
    /// simulator — ejection bookkeeping is committed in sequential order
    /// at any thread count. (The `LeakCredit` counter similarly lives on
    /// each [`crate::output::OutputUnit`].)
    pub(crate) sabotage_eject_seen: u64,
    // Reusable scratch buffer so the steady-state cycle loop performs no
    // heap allocation (the per-phase scratch lives in each shard's
    // `ShardFx`; this one serves the sequential injection phase, which
    // also reuses `poll_buf` above).
    pub(crate) flit_scratch: Vec<Flit>,
    /// Shard ownership sets for the parallel engine: one entry per
    /// shard, always at least one. A single entry selects the inline
    /// sequential path (no pool, no barriers).
    pub(crate) plans: Vec<crate::par::ShardPlan>,
    /// Per-shard scratch buffers and buffered side effects.
    pub(crate) fx: Vec<crate::par::ShardFx>,
    /// Worker threads, spawned lazily on the first multi-shard step.
    pub(crate) pool: Option<crate::par::Pool>,
    /// When set, a stall diagnosed by [`Simulator::try_step`] also writes
    /// a post-mortem snapshot (`postmortem-cycle-<N>.snap`) into this
    /// directory before the error is surfaced.
    pub(crate) post_mortem_dir: Option<std::path::PathBuf>,
    /// The side-band telemetry plane (`noc::telemetry`); `None` (the
    /// default) keeps every hook a single branch and the goldens
    /// untouched. Armed via [`Simulator::set_telemetry`] rather than
    /// `SimConfig`, deliberately: telemetry must never enter the
    /// checkpoint config hash.
    pub(crate) telemetry: Option<Box<crate::telemetry::Telemetry>>,
    /// Wall-clock origin shared with the shard phase timers.
    pub(crate) epoch: std::time::Instant,
}

impl Simulator {
    /// Build a simulator over the configured mesh, all links healthy.
    pub fn new(cfg: SimConfig) -> Self {
        let mesh = cfg.mesh.clone();
        if *mesh.topology() == noc_types::Topology::Torus {
            // The dateline scheme needs a low and a high VC half, and the
            // TDM slot filter could intersect a dateline class to an empty
            // set of grantable VCs — a deadlock by construction.
            assert!(
                cfg.vcs >= 2,
                "a torus needs vcs >= 2 for the dateline VC classes"
            );
            assert!(
                cfg.qos == crate::config::QosMode::None,
                "TDM QoS partitioning is incompatible with torus dateline VCs"
            );
        }
        let routing = Routing::for_mesh(&mesh);
        let routers = (0..mesh.routers())
            .map(|r| Router::new(NodeId(r as u16), &mesh, &cfg))
            .collect();
        let links = LinkLanes::new(
            mesh.all_links()
                .map(|l| LinkFaults::healthy(0xB0C0_0000 + l.index() as u64))
                .collect(),
        );
        let cores = mesh.cores();
        let vcs = cfg.vcs as usize;
        let metrics = MetricsRegistry::new(mesh.links(), mesh.routers());
        let tracer = cfg.trace.map(TraceRecorder::new);
        let (n_routers, n_links) = (mesh.routers(), mesh.links());
        let plans = crate::par::plan_shards(&mesh, cfg.threads.unwrap_or(1));
        let fx = (0..plans.len())
            .map(|_| crate::par::ShardFx::default())
            .collect();
        let orders = crate::par::link_orders(&plans, n_links);
        Self {
            cfg,
            mesh,
            routing,
            routing_epoch: 0,
            routers,
            links,
            dead_links: Vec::new(),
            inj_queues: (0..cores * vcs).map(|_| VecDeque::new()).collect(),
            inj_rr: vec![0; cores],
            cycle: 0,
            next_flit_id: 0,
            birth: std::collections::HashMap::new(),
            stats: SimStats::default(),
            events: Vec::new(),
            trace: Vec::new(),
            poll_buf: Vec::new(),
            last_progress_cycle: 0,
            pending_quarantine: Vec::new(),
            poisoned: None,
            watchdog_armed_at: 0,
            metrics,
            tracer,
            snap_base: (0, 0, 0),
            router_active: vec![true; n_routers],
            link_dead: vec![false; n_links],
            router_set: ActiveSet::new_all_set(n_routers),
            fwd_set: ActiveSet::new_all_set(n_links),
            rev_set: ActiveSet::new_all_set(n_links),
            launch_set: ActiveSet::new_all_set(n_links),
            dst_pos: orders.dst_pos,
            dst_order: orders.dst_order,
            src_pos: orders.src_pos,
            src_order: orders.src_order,
            fast_forward: true,
            skipped_cycles: 0,
            sabotage_eject_seen: 0,
            flit_scratch: Vec::new(),
            plans,
            fx,
            pool: None,
            post_mortem_dir: None,
            telemetry: None,
            epoch: std::time::Instant::now(),
        }
    }

    /// Re-shard the cycle engine onto `threads` threads (1 = the
    /// sequential path). The engine is stateless between cycles, so this
    /// is legal at any cycle boundary; the result stays bit-identical at
    /// every thread count. Benchmarks and the golden determinism suite
    /// use this to sweep thread counts without rebuilding the simulator.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = None;
        self.plans = crate::par::plan_shards(&self.mesh, threads.max(1));
        self.fx = (0..self.plans.len())
            .map(|_| crate::par::ShardFx::default())
            .collect();
        // The link-position permutations follow the plan; the activity
        // bitmaps reset to the conservative all-set state (they are
        // superset hints, so over-approximating is always sound).
        let orders = crate::par::link_orders(&self.plans, self.mesh.links());
        self.dst_pos = orders.dst_pos;
        self.dst_order = orders.dst_order;
        self.src_pos = orders.src_pos;
        self.src_order = orders.src_order;
        self.router_set.set_all();
        self.fwd_set.set_all();
        self.rev_set.set_all();
        self.launch_set.set_all();
    }

    /// Shards the cycle engine currently runs on (1 = sequential path).
    pub fn threads(&self) -> usize {
        self.plans.len()
    }

    // ------------------------------------------------------------------
    // Configuration and attack surface
    // ------------------------------------------------------------------

    /// The active configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The mesh geometry.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Access a link's fault layer (mount trojans, set transients/stuck-ats).
    pub fn link_faults_mut(&mut self, link: LinkId) -> &mut LinkFaults {
        self.links.faults_mut(link.index())
    }

    /// Immutable view of a link fault layer.
    pub fn link_faults(&self, link: LinkId) -> &LinkFaults {
        self.links.faults(link.index())
    }

    /// Assert/deassert the kill switch on every mounted trojan.
    pub fn arm_trojans(&mut self, on: bool) {
        for li in 0..self.links.len() {
            if let Some(t) = self.links.faults_mut(li).trojan.as_mut() {
                t.set_kill_switch(on);
            }
        }
    }

    /// Replace the routing function (rerouting baseline).
    pub fn set_routing(&mut self, routing: Routing) {
        self.routing = routing;
        self.routing_epoch = self.routing_epoch.wrapping_add(1);
    }

    /// Declare links dead: nothing launches on them any more. Combine with
    /// [`Simulator::set_routing`] so traffic avoids them.
    pub fn set_dead_links(&mut self, dead: Vec<LinkId>) {
        self.link_dead.fill(false);
        for l in &dead {
            self.link_dead[l.index()] = true;
        }
        self.dead_links = dead;
    }

    /// Links currently declared dead (killed or quarantined).
    pub fn dead_links(&self) -> &[LinkId] {
        &self.dead_links
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    /// All run statistics collected so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Events emitted and not yet drained.
    pub fn events(&self) -> &[SimEvent] {
        &self.events
    }

    /// Take all pending events.
    pub fn drain_events(&mut self) -> Vec<SimEvent> {
        std::mem::take(&mut self.events)
    }

    /// Append all pending events to `out`, retaining the internal
    /// buffer's capacity — the allocation-free alternative to
    /// [`Simulator::drain_events`] for harnesses that drain every cycle.
    pub fn drain_events_into(&mut self, out: &mut Vec<SimEvent>) {
        out.append(&mut self.events);
    }

    /// Clear measurement counters (keep the time series): call after a
    /// warm-up phase so averages reflect only the steady state.
    pub fn reset_measurement(&mut self) {
        self.stats.reset_measurement();
        self.snap_base = (0, 0, 0);
    }

    /// The traced packet's journey so far (`cfg.trace_packet`).
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// The per-link / per-router metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The structured event recorder, when tracing is armed (`cfg.trace`).
    pub fn tracer(&self) -> Option<&TraceRecorder> {
        self.tracer.as_ref()
    }

    /// Mutable access to the recorder (drain records, close sinks).
    pub fn tracer_mut(&mut self) -> Option<&mut TraceRecorder> {
        self.tracer.as_mut()
    }

    /// Attach a sink that receives every future trace record as it is
    /// emitted. Returns false (and drops the sink) when tracing is
    /// disabled.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) -> bool {
        match self.tracer.as_mut() {
            Some(t) => {
                t.set_sink(sink);
                true
            }
            None => false,
        }
    }

    /// Arm the side-band telemetry plane (`noc::telemetry`): engine
    /// self-profiling, streaming latency/retx sketches, and the alert
    /// rules. Runtime-only by design — not part of `SimConfig`, so
    /// arming it never changes the checkpoint config hash, and the
    /// zero-perturbation tests prove it never changes simulated state.
    pub fn set_telemetry(&mut self, cfg: crate::telemetry::TelemetryConfig) {
        let tel = crate::telemetry::Telemetry::new(cfg);
        self.epoch = tel.epoch;
        self.telemetry = Some(Box::new(tel));
    }

    /// The telemetry plane, when armed.
    pub fn telemetry(&self) -> Option<&crate::telemetry::Telemetry> {
        self.telemetry.as_deref()
    }

    /// Disarm and return the telemetry plane.
    pub fn take_telemetry(&mut self) -> Option<Box<crate::telemetry::Telemetry>> {
        self.telemetry.take()
    }

    /// Prometheus text exposition of the metrics registry, aggregate
    /// statistics, and (when armed) the telemetry gauges. `labels` are
    /// attached to every sample.
    pub fn prometheus_text(&self, labels: &[(&str, &str)]) -> String {
        crate::telemetry::prometheus_text(
            self.cycle,
            &self.stats,
            &self.metrics,
            self.telemetry.as_deref(),
            labels,
        )
    }

    /// Forensics: every buffered trace record about `packet`, in order
    /// (empty when tracing is disabled).
    pub fn packet_history(&self, packet: PacketId) -> Vec<Record> {
        self.tracer
            .as_ref()
            .map(|t| t.packet_history(packet))
            .unwrap_or_default()
    }

    /// Forensics: every buffered trace record about `link`, in order
    /// (empty when tracing is disabled).
    pub fn link_timeline(&self, link: LinkId) -> Vec<Record> {
        self.tracer
            .as_ref()
            .map(|t| t.link_timeline(link))
            .unwrap_or_default()
    }

    /// Audit every router against the flow-control/wormhole invariants
    /// (NoCAlert-style runtime checking). Returns all violations found;
    /// an empty vec means the micro-architectural state is sound.
    pub fn check_invariants(&self) -> Vec<crate::invariants::Violation> {
        self.routers
            .iter()
            .flat_map(|r| crate::invariants::check_router(r, &self.cfg))
            .collect()
    }

    /// Network-level invariant oracle: audits the cross-router state the
    /// per-router checks cannot see — per-(link, VC) credit conservation,
    /// flit duplication/teleportation, SECDED soundness of in-flight
    /// codewords, and watchdog-verdict consistency. Pure observation;
    /// empty result means the books balance. The conformance fuzzer
    /// (`crates/conformance`) runs this every epoch; long soaks can call
    /// it directly.
    pub fn check_network_invariants(&self) -> Vec<crate::invariants::Violation> {
        let mut out = Vec::new();
        self.check_credit_conservation(&mut out);
        self.check_flit_uniqueness(&mut out);
        self.check_ecc_soundness(&mut out);
        self.check_watchdog_consistency(&mut out);
        out
    }

    /// Every audit the simulator offers: the per-router wormhole checks
    /// plus the network-level oracle. The periodic
    /// `check_invariants_every` audit in [`Simulator::try_step`] runs
    /// this.
    pub fn check_all_invariants(&self) -> Vec<crate::invariants::Violation> {
        let mut v = self.check_invariants();
        v.extend(self.check_network_invariants());
        v
    }

    /// Per-(link, VC) credit conservation. A downstream buffer slot is in
    /// exactly one of four states: available upstream (`out.credits`),
    /// riding the reverse wire home, or held by a flit that consumed it —
    /// where "held" means the flit id appears in the upstream crossbar
    /// moves toward this output, the retransmission entries, the forward
    /// wire, or the downstream input unit (deduplicated by id: the
    /// retransmission protocol legitimately keeps an entry alive while
    /// its delivered copy's ACK rides home). The one-cycle window where a
    /// freed slot's credit is on the reverse wire while the stale entry
    /// still awaits its ACK can double-count, so the upper bound carries
    /// that slack; the lower bound (no credit may vanish) is exact.
    fn check_credit_conservation(&self, out: &mut Vec<crate::invariants::Violation>) {
        let depth = self.cfg.vc_depth as usize;
        let mut ids: HashSet<FlitId> = HashSet::new();
        for li in 0..self.links.len() {
            let link = LinkId(li as u16);
            let (src, dir) = self.mesh.link_source(link);
            let dst = self.mesh.link_dest(link);
            let Some(o) = self.routers[src.index()].outputs[dir.index()].as_ref() else {
                continue;
            };
            let down = &self.routers[dst.index()].inputs[Port::Net(dir.opposite()).index()];
            for v in 0..self.cfg.vcs as usize {
                let vc = VcId(v as u8);
                ids.clear();
                for mv in &self.routers[src.index()].st_pending {
                    if mv.out_port == Port::Net(dir) && mv.out_vc == Some(vc) {
                        ids.insert(mv.flit.id);
                    }
                }
                for e in &o.entries {
                    if e.vc == vc {
                        ids.insert(e.flit.id);
                    }
                }
                if let Some(lf) = self.links.in_flight(li) {
                    if lf.vc == vc {
                        ids.insert(lf.flit.id);
                    }
                }
                for f in &down.vcs[v].fifo {
                    ids.insert(f.id);
                }
                for d in &down.delayed {
                    if d.vc == vc {
                        ids.insert(d.flit.id);
                    }
                }
                for s in &down.pending_scrambles {
                    if s.vc == vc {
                        ids.insert(s.flit.id);
                    }
                }
                let credits = o.credits[v] as usize;
                let wire = self.links.reverse_credits_for(li, vc);
                if credits + wire + ids.len() < depth {
                    out.push(crate::invariants::Violation {
                        router: src.0,
                        what: format!(
                            "link {li} vc {v}: credit leak — {credits} upstream + {wire} \
                             in flight + {} held < depth {depth}",
                            ids.len()
                        ),
                    });
                }
                if credits + ids.len() > depth {
                    out.push(crate::invariants::Violation {
                        router: src.0,
                        what: format!(
                            "link {li} vc {v}: credit surplus — {credits} upstream + {} \
                             held > depth {depth}",
                            ids.len()
                        ),
                    });
                }
            }
        }
    }

    /// No flit duplication or teleportation. Authoritative copies
    /// (injection queues, input-unit holdings, crossbar moves) must be
    /// globally unique; retransmission entries are the protocol's sole
    /// sanctioned shadows, at most one per flit; an in-flight wire copy
    /// must shadow its own link's entry; and a flit buffered at a link's
    /// far end may only be shadowed by that same link's entry.
    fn check_flit_uniqueness(&self, out: &mut Vec<crate::invariants::Violation>) {
        let conc = self.mesh.concentration() as usize;
        let vcs = self.cfg.vcs as usize;
        // Authoritative sites.
        let mut sites: Vec<(FlitId, u16, &'static str)> = Vec::new();
        for (q, queue) in self.inj_queues.iter().enumerate() {
            let router = (q / vcs / conc) as u16;
            for f in queue {
                sites.push((f.id, router, "injection queue"));
            }
        }
        for r in 0..self.routers.len() {
            for unit in &self.routers[r].inputs {
                for ivc in &unit.vcs {
                    for f in &ivc.fifo {
                        sites.push((f.id, r as u16, "input FIFO"));
                    }
                }
                for d in &unit.delayed {
                    sites.push((d.flit.id, r as u16, "delayed hold"));
                }
                for s in &unit.pending_scrambles {
                    sites.push((s.flit.id, r as u16, "pending scramble"));
                }
            }
            for mv in &self.routers[r].st_pending {
                sites.push((mv.flit.id, r as u16, "crossbar move"));
            }
        }
        sites.sort_unstable_by_key(|s| s.0);
        for w in sites.windows(2) {
            if w[0].0 == w[1].0 {
                out.push(crate::invariants::Violation {
                    router: w[1].1,
                    what: format!(
                        "flit {:?} duplicated: {} at router {} and {} at router {}",
                        w[0].0, w[0].2, w[0].1, w[1].2, w[1].1
                    ),
                });
            }
        }
        // Shadows: at most one retransmission entry per flit.
        let mut entry_at: HashMap<FlitId, LinkId> = HashMap::new();
        for li in 0..self.links.len() {
            let link = LinkId(li as u16);
            let (src, dir) = self.mesh.link_source(link);
            let Some(o) = self.routers[src.index()].outputs[dir.index()].as_ref() else {
                continue;
            };
            for e in &o.entries {
                if let Some(prev) = entry_at.insert(e.flit.id, link) {
                    out.push(crate::invariants::Violation {
                        router: src.0,
                        what: format!(
                            "flit {:?} has retransmission entries at links {} and {li}",
                            e.flit.id,
                            prev.index()
                        ),
                    });
                }
            }
        }
        // An in-flight copy always duplicates its own link's entry.
        for li in 0..self.links.len() {
            if let Some(lf) = self.links.in_flight(li) {
                if entry_at.get(&lf.flit.id) != Some(&LinkId(li as u16)) {
                    let (src, _) = self.mesh.link_source(LinkId(li as u16));
                    out.push(crate::invariants::Violation {
                        router: src.0,
                        what: format!(
                            "flit {:?} in flight on link {li} without a backing \
                             retransmission entry there",
                            lf.flit.id
                        ),
                    });
                }
            }
        }
        // Teleportation: a flit held at a network input may only be
        // shadowed by the entry of the link that feeds that input.
        for r in 0..self.routers.len() {
            let node = NodeId(r as u16);
            for (p, unit) in self.routers[r].inputs.iter().enumerate() {
                let feeding = match Port::from_index(p) {
                    Port::Net(d) => self
                        .mesh
                        .neighbor(node, d)
                        .and_then(|nb| self.mesh.link_out(nb, d.opposite())),
                    Port::Local(_) => None,
                };
                let audit = |id: FlitId, out: &mut Vec<crate::invariants::Violation>| {
                    if let Some(&l) = entry_at.get(&id) {
                        if Some(l) != feeding {
                            out.push(crate::invariants::Violation {
                                router: r as u16,
                                what: format!(
                                    "flit {id:?} teleported: held at router {r} input {p} \
                                     but shadowed by link {}",
                                    l.index()
                                ),
                            });
                        }
                    }
                };
                for ivc in &unit.vcs {
                    for f in &ivc.fifo {
                        audit(f.id, out);
                    }
                }
                for d in &unit.delayed {
                    audit(d.flit.id, out);
                }
                for s in &unit.pending_scrambles {
                    audit(s.flit.id, out);
                }
            }
        }
    }

    /// SECDED soundness on the wire: the fault layer strikes at delivery,
    /// so an in-flight codeword must still be the exact encoding of its
    /// wire word — and a sound encoding must decode clean.
    fn check_ecc_soundness(&self, out: &mut Vec<crate::invariants::Violation>) {
        for li in 0..self.links.len() {
            let Some(lf) = self.links.in_flight(li) else {
                continue;
            };
            let (src, _) = self.mesh.link_source(LinkId(li as u16));
            if lf.codeword != Secded::encode(lf.wire_word) {
                out.push(crate::invariants::Violation {
                    router: src.0,
                    what: format!(
                        "link {li}: in-flight codeword is not the SECDED encoding of \
                         its wire word"
                    ),
                });
            } else if !matches!(Secded::decode(lf.codeword), Decode::Clean { .. }) {
                out.push(crate::invariants::Violation {
                    router: src.0,
                    what: format!("link {li}: sound in-flight codeword does not decode clean"),
                });
            }
        }
    }

    /// A watchdog verdict must describe the network it judged: occupancy
    /// figures match a recomputation, and a retransmission-livelock
    /// verdict names a real entry at the reported attempt count.
    fn check_watchdog_consistency(&self, out: &mut Vec<crate::invariants::Violation>) {
        let Some(report) = self.check_watchdog() else {
            return;
        };
        let culprit = report.culprit().map(|(r, _)| r.0).unwrap_or(0);
        if report.resident_flits != self.resident_flits()
            || report.queued_flits != self.queued_flits()
            || report.delivered_flits != self.stats.delivered_flits
        {
            out.push(crate::invariants::Violation {
                router: culprit,
                what: "watchdog report disagrees with recomputed network occupancy".into(),
            });
        }
        if let StallKind::RetxLivelock {
            router,
            dir,
            flit,
            attempts,
        } = report.kind
        {
            let named = self.routers[router.index()].outputs[dir.index()]
                .as_ref()
                .is_some_and(|o| {
                    o.entries
                        .iter()
                        .any(|e| e.flit.id == flit && e.attempts == attempts)
                });
            if !named {
                out.push(crate::invariants::Violation {
                    router: router.0,
                    what: format!(
                        "watchdog livelock verdict names flit {flit:?} at {attempts} \
                         attempts, but no such retransmission entry exists"
                    ),
                });
            }
        }
    }

    /// Flits resident anywhere in the network (buffers, crossbars,
    /// retransmission slots, descramble holds) — link copies of un-ACKed
    /// retransmission entries are not double-counted.
    pub fn resident_flits(&self) -> usize {
        self.routers.iter().map(Router::resident_flits).sum()
    }

    /// Flits still waiting in core injection queues.
    pub fn queued_flits(&self) -> usize {
        self.inj_queues.iter().map(VecDeque::len).sum()
    }

    /// Length of one core's injection queue for a given VC class.
    pub fn injection_queue_len(&self, core: usize, vc: u8) -> usize {
        self.inj_queues[core * self.cfg.vcs as usize + vc as usize].len()
    }

    /// True when no flit remains anywhere.
    pub fn is_quiescent(&self) -> bool {
        self.resident_flits() == 0 && self.queued_flits() == 0
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Run for `cycles` cycles with the given traffic source. Provably
    /// no-op stretches are fast-forwarded (see
    /// [`Simulator::skip_idle_cycles`]); the final state is bit-identical
    /// to naive stepping.
    pub fn run(&mut self, cycles: u64, source: &mut dyn TrafficSource) {
        let deadline = self.cycle.saturating_add(cycles);
        while self.cycle < deadline {
            if self.skip_idle_cycles(deadline - self.cycle, source) == 0 {
                self.step(source);
            }
        }
    }

    /// Run until every injected flit is delivered (or `max_cycles` passes,
    /// which indicates saturation/deadlock). Returns true on full drain.
    pub fn run_to_quiescence(&mut self, max_cycles: u64, source: &mut dyn TrafficSource) -> bool {
        let deadline = self.cycle.saturating_add(max_cycles);
        while self.cycle < deadline {
            self.step(source);
            if source.done() && self.is_quiescent() {
                return true;
            }
            // Fast-forward only after the exit check: the skip gate
            // requires an empty network and a future horizon, conditions
            // under which the naive loop provably would not have exited
            // during the skipped stretch (the source is not done).
            if self.cycle < deadline {
                self.skip_idle_cycles(deadline - self.cycle, source);
            }
        }
        source.done() && self.is_quiescent()
    }

    /// Advance one cycle: the eight phases in reverse pipeline order.
    /// Phases 1–7 run through the sharded engine ([`crate::par`]) — on
    /// one shard this is the plain sequential loop; on several it
    /// fans out across the worker pool and commits per-shard effects in
    /// sequential order, bit-identical either way.
    pub fn step(&mut self, source: &mut dyn TrafficSource) {
        let now = self.cycle;
        self.run_phase_groups(now);
        self.commit_fx(now);
        self.phase_injection(now, source);
        if now.is_multiple_of(self.cfg.snapshot_interval) {
            self.record_snapshot(now);
        }
        // Links condemned by the retry-budget escalation are quarantined
        // between cycles, where no phase holds partial state.
        if !self.pending_quarantine.is_empty() {
            let pending = std::mem::take(&mut self.pending_quarantine);
            for link in pending {
                if self.dead_links.contains(&link) {
                    continue;
                }
                if let Err(err) = self.quarantine_link(link) {
                    self.poisoned.get_or_insert(err);
                }
            }
        }
        self.cycle = now + 1;
    }

    /// Advance one cycle under the resilience guards: surfaces quarantine
    /// failures, runs the periodic invariant audit
    /// (`cfg.check_invariants_every`), and consults the watchdog
    /// (`cfg.watchdog`). On `Err` the simulator remains usable — a
    /// [`SimError::Stalled`] caller can quarantine the culprit and resume.
    pub fn try_step(&mut self, source: &mut dyn TrafficSource) -> Result<(), SimError> {
        self.step(source);
        if let Some(err) = self.poisoned.take() {
            return Err(err);
        }
        if let Some(every) = self.cfg.check_invariants_every {
            if self.cycle.is_multiple_of(every.max(1)) {
                let violations = self.check_all_invariants();
                if !violations.is_empty() {
                    return Err(SimError::InvariantViolations {
                        cycle: self.cycle,
                        violations,
                    });
                }
            }
        }
        if let Some(mut report) = self.check_watchdog() {
            self.watchdog_armed_at = self.cycle;
            if let Some(t) = self.telemetry.as_deref_mut() {
                t.note_watchdog(self.cycle);
                report.heartbeat = Some(t.engine_heartbeat(self.cycle));
            }
            let (router, dir) = match report.culprit() {
                Some((r, d)) => (Some(r), Some(d)),
                None => (None, None),
            };
            let cycle = self.cycle;
            emit!(
                self,
                cycle,
                TraceKind::WatchdogTripped {
                    class: report.kind.into(),
                    router,
                    dir,
                }
            );
            self.events.push(SimEvent::WatchdogTripped { report });
            self.write_post_mortem();
            return Err(SimError::Stalled(Box::new(report)));
        }
        Ok(())
    }

    /// Arm automatic post-mortem snapshots: when [`Simulator::try_step`]
    /// diagnoses a stall, the full simulator state is written to
    /// `dir/postmortem-cycle-<N>.snap` before the error is surfaced, so
    /// the deadlocked mesh can be reloaded and inspected offline. Pass
    /// `None` to disarm.
    pub fn set_post_mortem_dir(&mut self, dir: Option<std::path::PathBuf>) {
        self.post_mortem_dir = dir;
    }

    /// Best-effort post-mortem snapshot (stall forensics). IO errors are
    /// swallowed: the stall diagnosis must reach the caller regardless.
    fn write_post_mortem(&mut self) {
        let Some(dir) = self.post_mortem_dir.clone() else {
            return;
        };
        let snap = self.snapshot();
        let path = dir.join(format!("postmortem-cycle-{:012}.snap", self.cycle));
        let _ = std::fs::create_dir_all(&dir);
        let _ = snap.write_atomic(&path);
    }

    /// Guarded version of [`Simulator::run`].
    pub fn run_guarded(
        &mut self,
        cycles: u64,
        source: &mut dyn TrafficSource,
    ) -> Result<(), SimError> {
        let deadline = self.cycle.saturating_add(cycles);
        while self.cycle < deadline {
            if self.skip_idle_cycles_guarded(deadline - self.cycle, source)? == 0 {
                self.try_step(source)?;
            }
        }
        Ok(())
    }

    /// Guarded version of [`Simulator::run_to_quiescence`]: instead of
    /// silently spinning through a deadlock until the cycle budget dies,
    /// the watchdog converts the stall into a structured error.
    pub fn run_to_quiescence_guarded(
        &mut self,
        max_cycles: u64,
        source: &mut dyn TrafficSource,
    ) -> Result<bool, SimError> {
        let deadline = self.cycle.saturating_add(max_cycles);
        while self.cycle < deadline {
            self.try_step(source)?;
            if source.done() && self.is_quiescent() {
                return Ok(true);
            }
            if self.cycle < deadline {
                self.skip_idle_cycles_guarded(deadline - self.cycle, source)?;
            }
        }
        Ok(source.done() && self.is_quiescent())
    }

    // ------------------------------------------------------------------
    // Quiescence-aware fast-forward (the event-horizon engine)
    // ------------------------------------------------------------------

    /// Enable or disable cycle skipping (on by default). With it off,
    /// [`Simulator::skip_idle_cycles`] always returns 0 and every run
    /// helper degenerates to naive stepping — the A/B arm for the
    /// equivalence proptests and the bench `--no-skip` flag.
    pub fn set_fast_forward(&mut self, on: bool) {
        self.fast_forward = on;
    }

    /// Whether cycle skipping is enabled.
    pub fn fast_forward(&self) -> bool {
        self.fast_forward
    }

    /// Cycles fast-forwarded so far (diagnostic; not part of
    /// [`SimStats`], snapshots, or goldens).
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Fast-forward over provably no-op cycles, up to `limit` cycles
    /// ahead. Returns the number skipped (0 = could not prove anything).
    ///
    /// A cycle is provably no-op when the network holds no state that any
    /// phase could act on — every hierarchical activity bitmap is clear
    /// (no router phase work, no forward wire, no reverse message, no
    /// retransmission entry), the injection queues are empty, and no
    /// quarantine or poison is pending — and the traffic source's
    /// [`TrafficSource::next_injection_at`] horizon lies in the future.
    /// Under those conditions phases 1–7 touch nothing, injection admits
    /// nothing, the trojan FSMs cannot advance (they only snoop at link
    /// delivery), and the watchdog is vacuously silent, so the *only*
    /// per-cycle effect of naive stepping is the periodic
    /// [`Snapshot`] (and its telemetry alert-window evaluation) — which
    /// this fast path replays exactly, once per skipped
    /// `snapshot_interval` multiple. The skip is therefore bit-identical
    /// to naive stepping by construction; `tests/` proves it again by
    /// proptest against the disabled-skip arm.
    pub fn skip_idle_cycles(&mut self, limit: u64, source: &mut dyn TrafficSource) -> u64 {
        let Some((from, to)) = self.skip_window(limit, source) else {
            return 0;
        };
        self.commit_skip(from, to, source);
        to - from
    }

    /// Guarded fast-forward: replays [`Simulator::try_step`]'s periodic
    /// invariant audit. The simulator state is constant across the
    /// window, so a single audit stands for every multiple of
    /// `check_invariants_every` inside it; on violation the skip is
    /// truncated to the exact cycle where naive guarded stepping would
    /// have surfaced the error.
    pub fn skip_idle_cycles_guarded(
        &mut self,
        limit: u64,
        source: &mut dyn TrafficSource,
    ) -> Result<u64, SimError> {
        let Some((from, to)) = self.skip_window(limit, source) else {
            return Ok(0);
        };
        if let Some(every) = self.cfg.check_invariants_every {
            // `try_step` audits after the cycle counter increments, i.e.
            // at multiples of `every` in `(from, to]`.
            let first = (from + 1).next_multiple_of(every.max(1));
            if first <= to {
                let violations = self.check_all_invariants();
                if !violations.is_empty() {
                    self.commit_skip(from, first, source);
                    return Err(SimError::InvariantViolations {
                        cycle: first,
                        violations,
                    });
                }
            }
        }
        self.commit_skip(from, to, source);
        Ok(to - from)
    }

    /// The skip gate: prove cycles `[self.cycle, to)` are no-ops and
    /// return the window, or `None`. Checks are ordered cheapest-first;
    /// the bitmap compaction doubles as the summary-level maintenance
    /// pass.
    fn skip_window(&mut self, limit: u64, source: &mut dyn TrafficSource) -> Option<(u64, u64)> {
        if !self.fast_forward || limit == 0 {
            return None;
        }
        let now = self.cycle;
        // Busy-network early-out first: under saturation the active
        // sets are dense, so `any_set` rejects in one or two summary
        // loads before paying the source-horizon lookup (which walks
        // the injection schedule and dominated the gate's cost in the
        // flood benchmarks — a per-cycle tax that never bought a skip).
        if self.router_set.any_set()
            || self.fwd_set.any_set()
            || self.rev_set.any_set()
            || self.launch_set.any_set()
        {
            return None;
        }
        // Source horizon — the cheapest remaining reject while traffic
        // flows into an otherwise drained network.
        let horizon = match source.next_injection_at(now) {
            Some(h) if h <= now => return None,
            Some(h) => h,
            None => u64::MAX,
        };
        self.router_set.compact();
        if !self.router_set.all_clear() {
            return None;
        }
        self.fwd_set.compact();
        self.rev_set.compact();
        self.launch_set.compact();
        if !(self.fwd_set.all_clear() && self.rev_set.all_clear() && self.launch_set.all_clear()) {
            return None;
        }
        if !self.pending_quarantine.is_empty() || self.poisoned.is_some() {
            return None;
        }
        if self.queued_flits() != 0 {
            return None;
        }
        // The clear bitmaps already imply an empty network; re-derive it
        // from the authoritative state so a bitmap bug can only cost
        // performance, never correctness.
        if self.resident_flits() != 0 {
            debug_assert!(false, "activity bitmaps clear but flits resident");
            return None;
        }
        // Defence in depth: every timed release (input scramble delays),
        // retransmission entry, VC ownership, and pending switch grant
        // holds a resident flit, so clear bitmaps imply all of them are
        // idle — audit that implication rather than trust it.
        debug_assert!(
            self.routers
                .iter()
                .all(crate::router::Router::is_skip_transparent),
            "activity bitmaps clear but a router holds timed or ownership state"
        );
        let cap = now.saturating_add(limit);
        let mut to = horizon.min(cap);
        // Fault layers are reactive today (next_autonomous_event_at is
        // None throughout), but a time-triggered fault model bounds the
        // window here instead of being silently jumped over.
        for li in 0..self.links.len() {
            match self.links.faults(li).next_autonomous_event_at(now) {
                Some(h) if h <= now => return None,
                Some(h) => to = to.min(h),
                None => {}
            }
        }
        // Conformance self-test defect: overshoot the horizon by one
        // cycle (swallowing an injection) whenever the horizon — not the
        // caller's cap — bounded the window, so harness-imposed caps
        // (epoch boundaries, --halt-at) are still honoured.
        if matches!(self.cfg.sabotage, Some(crate::config::Sabotage::OverSkip)) && to < cap {
            to += 1;
        }
        (to > now).then_some((now, to))
    }

    /// Apply a proven skip window: replay the periodic snapshot (and its
    /// alert evaluation) for every `snapshot_interval` multiple inside
    /// it, advance the cycle counter, and fast-forward the source cursor.
    fn commit_skip(&mut self, from: u64, to: u64, source: &mut dyn TrafficSource) {
        let iv = self.cfg.snapshot_interval;
        if iv == 0 {
            // `is_multiple_of(0)` only holds at cycle 0.
            if from == 0 {
                self.record_snapshot(0);
            }
        } else {
            let mut m = from.next_multiple_of(iv);
            while m < to {
                self.record_snapshot(m);
                m += iv;
            }
        }
        self.skipped_cycles += to - from;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.note_skipped(to - from);
        }
        self.cycle = to;
        source.skip_to(to);
    }

    /// Run phase groups G1–G3 (phases 1–7) across all shards. With one
    /// shard everything runs inline on this thread; with more, the pool
    /// is (lazily) spun up and each group is dispatched behind barriers.
    fn run_phase_groups(&mut self, now: u64) {
        use crate::par::{DisjointMut, Group, PhaseCtx};
        if self.plans.len() > 1 && self.pool.is_none() {
            self.pool = Some(crate::par::Pool::new(self.plans.len() - 1));
        }
        let ctx = PhaseCtx {
            cfg: &self.cfg,
            mesh: &self.mesh,
            routing: &self.routing,
            routing_epoch: self.routing_epoch,
            dead_links: &self.dead_links,
            link_dead: &self.link_dead,
            routers: DisjointMut::new(&mut self.routers),
            links: self.links.view(),
            link_metrics: DisjointMut::new(self.metrics.link_slice_mut()),
            router_active: DisjointMut::new(&mut self.router_active),
            router_set: &self.router_set,
            fwd_set: &self.fwd_set,
            rev_set: &self.rev_set,
            launch_set: &self.launch_set,
            dst_pos: &self.dst_pos,
            dst_order: &self.dst_order,
            src_pos: &self.src_pos,
            src_order: &self.src_order,
            tracing: self.tracer.is_some(),
            telemetry: self.telemetry.is_some(),
            profile: self.telemetry.as_ref().is_some_and(|t| t.profile_due(now)),
            timeline: self.telemetry.as_ref().is_some_and(|t| t.timeline_due(now)),
            epoch: self.epoch,
        };
        match self.pool.as_ref() {
            None => {
                let fx = &mut self.fx[0];
                for g in [Group::G1, Group::G2, Group::G3] {
                    crate::par::run_group(&ctx, &self.plans[0], fx, g, now);
                }
            }
            Some(pool) => {
                let fx = self.fx.as_mut_ptr();
                for g in [Group::G1, Group::G2, Group::G3] {
                    pool.run(&ctx, &self.plans, fx, g, now);
                }
            }
        }
    }

    /// Fold every shard's buffered side effects back into the global
    /// simulator in exactly the order the sequential engine would have
    /// produced them: P1 effects (id-merged across shards), then P3,
    /// P4, and finally the per-ejection P5 bookkeeping in ascending
    /// router order (shard bands are contiguous, so walking shards in
    /// order is already router order).
    fn commit_fx(&mut self, now: u64) {
        use crate::par::merge_keyed;
        let Self {
            fx,
            tracer,
            events,
            trace,
            pending_quarantine,
            stats,
            metrics,
            birth,
            sabotage_eject_seen,
            cfg,
            last_progress_cycle,
            telemetry,
            ..
        } = self;
        // Structured trace records, in phase order (one stream).
        if let Some(t) = tracer.as_mut() {
            merge_keyed(fx, |f| &mut f.p1_kinds, |k| t.record(now, k));
            merge_keyed(fx, |f| &mut f.p3_kinds, |k| t.record(now, k));
            merge_keyed(fx, |f| &mut f.p4_kinds, |k| t.record(now, k));
        } else {
            for f in fx.iter_mut() {
                debug_assert!(f.p1_kinds.is_empty() && f.p3_kinds.is_empty());
                f.p1_kinds.clear();
                f.p3_kinds.clear();
                f.p4_kinds.clear();
            }
        }
        // Simulator events, in phase order (a second, separate stream).
        merge_keyed(fx, |f| &mut f.p1_events, |e| events.push(e));
        merge_keyed(fx, |f| &mut f.p3_events, |e| events.push(e));
        // Traced-packet journey (third stream).
        merge_keyed(fx, |f| &mut f.p1_trace, |e| trace.push(e));
        merge_keyed(fx, |f| &mut f.p4_trace, |e| trace.push(e));
        // Quarantine requests: ascending link id = sequential P3 order.
        for f in fx.iter_mut() {
            pending_quarantine.extend(f.p3_quar.drain(..).map(LinkId));
        }
        pending_quarantine.sort_unstable();
        // Commutative counter deltas.
        for f in fx.iter_mut() {
            let d = std::mem::take(&mut f.stats);
            stats.corrected_faults += d.corrected_faults;
            stats.uncorrectable_faults += d.uncorrectable_faults;
            stats.bist_scans += d.bist_scans;
            stats.retransmissions += d.retransmissions;
            stats.budget_escalations += d.budget_escalations;
        }
        // P5 ejection bookkeeping, deferred from the workers: shard
        // bands ascend, so this walk is the sequential per-router order.
        let mut progress = false;
        for f in fx.iter_mut() {
            progress |= std::mem::take(&mut f.progress);
            let mut ejs = std::mem::take(&mut f.p5_ejections);
            for &(r, ej) in ejs.iter() {
                let node = NodeId(r);
                if cfg.trace_packet == Some(ej.flit.packet) {
                    trace.push(TraceEvent::Ejected {
                        cycle: now,
                        flit: ej.flit.id,
                        router: node,
                    });
                }
                metrics.router_mut(node).ejected_flits.inc();
                if let Some(t) = tracer.as_mut() {
                    t.record(
                        now,
                        TraceKind::FlitEjected {
                            flit: ej.flit.id,
                            packet: ej.flit.packet,
                            router: node,
                        },
                    );
                }
                stats.delivered_flits += 1;
                // Conformance self-test hook: double-count every Nth
                // ejection in the delivery statistics.
                if let Some(crate::config::Sabotage::OvercountDelivered { every }) = cfg.sabotage {
                    *sabotage_eject_seen += 1;
                    if sabotage_eject_seen.is_multiple_of(every.max(1) as u64) {
                        stats.delivered_flits += 1;
                    }
                }
                if ej.flit.kind.closes_packet() {
                    stats.delivered_packets += 1;
                    let born = birth.remove(&ej.flit.packet).unwrap_or(now);
                    let latency = now.saturating_sub(born);
                    stats.record_latency(latency);
                    if let Some(t) = telemetry.as_deref_mut() {
                        t.record_latency(latency);
                    }
                    events.push(SimEvent::PacketDelivered {
                        packet: ej.flit.packet,
                        src: ej.flit.header.src,
                        dest: ej.flit.header.dest,
                        injected_at: born,
                        delivered_at: now,
                    });
                }
            }
            ejs.clear();
            f.p5_ejections = ejs;
        }
        if progress {
            *last_progress_cycle = now;
        }
        // Side-band engine profile: drained last, reads only wall-clock
        // scratch plus simulation-derived integers already committed.
        if let Some(t) = telemetry.as_deref_mut() {
            let profiled = t.profile_due(now);
            t.absorb_cycle(now, profiled, fx);
        }
    }

    // Phase 8: traffic sources inject; injection queues feed local ports.
    fn phase_injection(&mut self, now: u64, source: &mut dyn TrafficSource) {
        self.poll_buf.clear();
        source.poll(now, &mut self.poll_buf);
        let conc = self.mesh.concentration();
        let vcs = self.cfg.vcs as usize;
        let packets = std::mem::take(&mut self.poll_buf);
        let mut flits = std::mem::take(&mut self.flit_scratch);
        for pkt in &packets {
            self.stats.injected_packets += 1;
            self.birth.insert(pkt.id, pkt.created_at);
            flits.clear();
            pkt.packetize_into(&mut self.next_flit_id, &mut flits);
            self.stats.injected_flits += flits.len() as u64;
            let core = pkt.src.index() * conc as usize + (pkt.thread % conc) as usize;
            if self.cfg.trace_packet == Some(pkt.id) {
                for f in &flits {
                    self.trace.push(TraceEvent::Injected {
                        cycle: now,
                        flit: f.id,
                        core: core as u16,
                    });
                }
            }
            if self.tracer.is_some() {
                for f in &flits {
                    let (flit, packet) = (f.id, f.packet);
                    emit!(
                        self,
                        now,
                        TraceKind::FlitInjected {
                            flit,
                            packet,
                            core: core as u16,
                        }
                    );
                }
            }
            self.inj_queues[core * vcs + pkt.vc.index()].extend(flits.iter().copied());
        }
        self.flit_scratch = flits;
        self.poll_buf = packets;
        // One flit per injection port per cycle; round-robin over the
        // port's VC-class queues so no class starves another.
        for core in 0..self.inj_rr.len() {
            let router = core / conc as usize;
            let port = Port::Local((core % conc as usize) as u8);
            let start = self.inj_rr[core] as usize;
            let mut admitted = false;
            let mut waiting = false;
            for off in 0..vcs {
                let v = (start + off) % vcs;
                let q = core * vcs + v;
                let Some(f) = self.inj_queues[q].front().copied() else {
                    continue;
                };
                waiting = true;
                let vc = f.header.vc;
                debug_assert_eq!(vc.index(), v);
                let unit = &self.routers[router].inputs[port.index()];
                let ivc = &unit.vcs[vc.index()];
                let admit_head = f.kind.carries_header()
                    && ivc.state == crate::input::VcState::Idle
                    && ivc.fifo.is_empty();
                let admit_body = !f.kind.carries_header()
                    && ivc
                        .fifo
                        .back()
                        .map(|b| b.packet == f.packet)
                        .unwrap_or(ivc.state != crate::input::VcState::Idle);
                let has_room = unit.free_slots(vc, self.cfg.vc_depth as usize) > 0;
                if has_room && (admit_head || admit_body) {
                    self.inj_queues[q].pop_front();
                    self.routers[router].buffer_write(port, vc, f, now);
                    self.router_active[router] = true;
                    self.router_set.set(router);
                    self.inj_rr[core] = ((v + 1) % vcs) as u8;
                    self.last_progress_cycle = now;
                    admitted = true;
                    break;
                }
            }
            // A core with a flit waiting and no VC able to admit it spent
            // this cycle stalled at the injection port.
            if waiting && !admitted {
                self.metrics
                    .router_mut(NodeId(router as u16))
                    .injection_stalls
                    .inc();
            }
        }
    }

    // ------------------------------------------------------------------
    // Resilience: watchdog, quarantine, purge
    // ------------------------------------------------------------------

    /// Run the stall detectors (no-op unless `cfg.watchdog` is set).
    /// Most specific first: a retransmission livelock names the exact
    /// flit, a credit stall names the port, a global deadlock only states
    /// that nothing moves.
    pub fn check_watchdog(&self) -> Option<StallReport> {
        let wd = self.cfg.watchdog?;
        let now = self.cycle;
        let armed = self.watchdog_armed_at;
        let resident = self.resident_flits();
        let queued = self.queued_flits();
        if resident == 0 && queued == 0 {
            return None;
        }
        let report = |kind| StallReport {
            cycle: now,
            kind,
            resident_flits: resident,
            queued_flits: queued,
            delivered_flits: self.stats.delivered_flits,
            // Attached by `try_step` when telemetry is armed; equality
            // and the snapshot codec both ignore it.
            heartbeat: None,
        };
        for r in &self.routers {
            for d in 0..4 {
                let Some(out) = r.outputs[d].as_ref() else {
                    continue;
                };
                for e in &out.entries {
                    // `sent_at > armed`: only entries retried since the
                    // last intervention count, so a quarantine's grace
                    // period is honoured while an ignored livelock keeps
                    // re-reporting.
                    if e.attempts >= wd.retx_attempt_limit && e.sent_at > armed {
                        return Some(report(StallKind::RetxLivelock {
                            router: r.node,
                            dir: Direction::ALL[d],
                            flit: e.flit.id,
                            attempts: e.attempts,
                        }));
                    }
                }
            }
        }
        for r in &self.routers {
            for d in 0..4 {
                let Some(out) = r.outputs[d].as_ref() else {
                    continue;
                };
                if out.entries.is_empty()
                    || now.saturating_sub(out.last_progress.max(armed)) < wd.credit_stall_cycles
                {
                    continue;
                }
                let oldest = out
                    .entries
                    .iter()
                    .map(|e| now.saturating_sub(e.entered_at.max(armed)))
                    .max()
                    .unwrap_or(0);
                if oldest >= wd.credit_stall_cycles {
                    return Some(report(StallKind::CreditStall {
                        router: r.node,
                        dir: Direction::ALL[d],
                        oldest_age: oldest,
                    }));
                }
            }
        }
        let idle = now.saturating_sub(self.last_progress_cycle.max(armed));
        if idle >= wd.global_stall_cycles {
            return Some(report(StallKind::GlobalDeadlock { idle_cycles: idle }));
        }
        None
    }

    /// Quarantine a link: declare it dead, purge every packet with state
    /// committed to it (network-wide, with exact credit restoration), and
    /// rebuild deadlock-free up*/down* routes around the enlarged dead
    /// set. Campaign drivers call this directly with the culprit from a
    /// [`StallReport`]; the retry-budget escalation calls it automatically.
    ///
    /// Errors with [`SimError::MeshDisconnected`] when no route table can
    /// connect all routers any more — the mesh cannot degrade further.
    pub fn quarantine_link(&mut self, link: LinkId) -> Result<(), SimError> {
        let now = self.cycle;
        let (src, dir) = self.mesh.link_source(link);
        let dst = self.mesh.link_dest(link);
        let in_port = Port::Net(dir.opposite());
        // Victims: every packet with state committed to the dying link —
        // retransmission entries, the in-flight wire copy, crossbar moves
        // granted toward it, input VCs routed at it, and unresolved
        // scrambles at the far end whose XOR key dies with the link.
        let mut victims: HashSet<PacketId> = HashSet::new();
        if let Some(out) = self.routers[src.index()].outputs[dir.index()].as_ref() {
            victims.extend(out.entries.iter().map(|e| e.flit.packet));
        }
        if let Some(lf) = self.links.in_flight(link.index()) {
            victims.insert(lf.flit.packet);
        }
        for mv in &self.routers[src.index()].st_pending {
            if mv.out_port == Port::Net(dir) {
                victims.insert(mv.flit.packet);
            }
        }
        for unit in &self.routers[src.index()].inputs {
            for ivc in &unit.vcs {
                if ivc.route == Some(Port::Net(dir)) {
                    victims.extend(ivc.packet);
                }
            }
        }
        let far = &self.routers[dst.index()].inputs[in_port.index()];
        for s in &far.pending_scrambles {
            if far.lookup_word(s.partner).is_none() {
                victims.insert(s.flit.packet);
            }
        }
        // Kill the link first so nothing launches onto it mid-purge.
        self.dead_links.push(link);
        self.link_dead[link.index()] = true;
        let (flits, packets) = self.purge_packets(&victims, link);
        self.stats.quarantined_links += 1;
        emit!(
            self,
            now,
            TraceKind::LinkQuarantined {
                link,
                dropped_flits: flits,
                dropped_packets: packets,
            }
        );
        self.events.push(SimEvent::LinkQuarantined {
            link,
            dropped_packets: packets,
            dropped_flits: flits,
            cycle: now,
        });
        // Survivors inherit old timestamps yet need time to drain through
        // the rerouted mesh: give the watchdog a fresh grace period.
        self.watchdog_armed_at = now;
        match crate::routing::RouteTables::build_updown(&self.mesh, &self.dead_links) {
            Some(tables) if tables.fully_connected() => {
                self.routing = Routing::Table(tables);
                self.routing_epoch = self.routing_epoch.wrapping_add(1);
                Ok(())
            }
            _ => Err(SimError::MeshDisconnected {
                cycle: now,
                dead: self.dead_links.clone(),
            }),
        }
    }

    /// Remove every flit of the victim packets from the whole network —
    /// router buffers, link wires, injection queues — and settle the
    /// credit books so the flow-control invariants still hold afterwards.
    /// Returns `(flits, packets)` explicitly dropped (counted once per
    /// unique flit; an in-flight wire copy duplicates its retransmission
    /// entry and is not double-counted). `link` names the quarantined
    /// link for the trace records.
    fn purge_packets(&mut self, victims: &HashSet<PacketId>, link: LinkId) -> (u64, u64) {
        if victims.is_empty() {
            return (0, 0);
        }
        let now = self.cycle;
        let mut unique: HashSet<FlitId> = HashSet::new();
        // A flit can be purged twice (retransmission slot upstream + the
        // downstream copy while its ACK rides the reverse wire) but holds
        // at most one live credit. Buffer-side records are authoritative;
        // a retransmission entry's record only counts when the flit never
        // occupied the downstream router at all (faulted on the wire, or
        // the wire copy is being purged with it). The moment a flit pops
        // from the downstream FIFO at SA its slot credit is already
        // travelling back as an ordinary credit return, so any non-retx
        // copy — even one holding no credit itself, like a crossbar move
        // to the local ejection port — disqualifies the entry's record,
        // as does a success ACK still riding the entry's own link.
        let mut strong: HashMap<FlitId, (usize, Direction, VcId)> = HashMap::new();
        let mut weak: HashMap<FlitId, (usize, Direction, VcId)> = HashMap::new();
        let mut covered: HashSet<FlitId> = HashSet::new();
        for r in 0..self.routers.len() {
            let node = NodeId(r as u16);
            for copy in self.routers[r].purge_packets(victims, now) {
                unique.insert(copy.flit);
                let resolved = match copy.site {
                    Some(CreditSite::SelfOutput(dir, vc)) => Some((r, dir, vc)),
                    Some(CreditSite::Upstream(in_dir, vc)) => self
                        .mesh
                        .neighbor(node, in_dir)
                        .map(|nb| (nb.index(), in_dir.opposite(), vc)),
                    None => None,
                };
                if copy.from_retx {
                    if let Some(site) = resolved {
                        weak.entry(copy.flit).or_insert(site);
                    }
                } else {
                    covered.insert(copy.flit);
                    if let Some(site) = resolved {
                        strong.entry(copy.flit).or_insert(site);
                    }
                }
            }
        }
        for (flit, site @ (r, dir, _)) in weak {
            if covered.contains(&flit) {
                continue;
            }
            let acked = self
                .mesh
                .link_out(NodeId(r as u16), dir)
                .is_some_and(|l| self.links.reverse_ack_success_for(l.index(), flit));
            if acked {
                continue;
            }
            strong.entry(flit).or_insert(site);
        }
        for (_, (r, dir, vc)) in strong {
            if let Some(out) = self.routers[r].outputs[dir.index()].as_mut() {
                out.credits[vc.index()] += 1;
                debug_assert!(out.credits[vc.index()] <= self.cfg.vc_depth);
            }
        }
        // Wire copies always duplicate a live retransmission entry: they
        // are neither counted nor credited, but must never deliver.
        for li in 0..self.links.len() {
            self.links
                .purge_in_flight(li, |lf| victims.contains(&lf.flit.packet));
        }
        let mut flits = unique.len() as u64;
        for q in &mut self.inj_queues {
            let before = q.len();
            q.retain(|f| !victims.contains(&f.packet));
            flits += (before - q.len()) as u64;
        }
        let mut packets = 0u64;
        for pid in victims {
            if self.birth.remove(pid).is_some() {
                packets += 1;
                emit!(self, now, TraceKind::PacketDropped { packet: *pid, link });
            }
        }
        self.stats.dropped_flits += flits;
        self.stats.dropped_packets += packets;
        (flits, packets)
    }

    /// Total flits queued at one core's injection port (over VC classes).
    fn core_queue_len(&self, core: usize) -> usize {
        let vcs = self.cfg.vcs as usize;
        (0..vcs)
            .map(|v| self.inj_queues[core * vcs + v].len())
            .sum()
    }

    fn record_snapshot(&mut self, now: u64) {
        let conc = self.mesh.concentration() as usize;
        let mut all_full = 0;
        let mut half_full = 0;
        let mut blocked = 0;
        for r in 0..self.routers.len() {
            let full_cores = (0..conc)
                .filter(|c| self.core_queue_len(r * conc + c) >= self.cfg.injection_full_threshold)
                .count();
            if full_cores == conc {
                all_full += 1;
            }
            if full_cores * 2 > conc {
                half_full += 1;
            }
            if self.routers[r].has_blocked_port(now, self.cfg.blocked_threshold) {
                blocked += 1;
            }
        }
        // Sample the per-router occupancy gauges alongside the snapshot.
        for r in 0..self.routers.len() {
            let input = self.routers[r].network_input_occupancy() as u64;
            let output = self.routers[r].output_occupancy() as u64;
            let deepest = self.routers[r].input_high_water();
            let rm = self.metrics.router_mut(NodeId(r as u16));
            rm.input_occupancy.observe(input);
            rm.retx_occupancy.observe(output);
            rm.buffer_high_water = deepest;
        }
        let (d0, r0, u0) = self.snap_base;
        self.snap_base = (
            self.stats.delivered_flits,
            self.stats.retransmissions,
            self.stats.uncorrectable_faults,
        );
        self.stats.snapshots.push(Snapshot {
            cycle: now,
            input_util: self
                .routers
                .iter()
                .map(Router::network_input_occupancy)
                .sum(),
            output_util: self.routers.iter().map(Router::output_occupancy).sum(),
            injection_util: self.queued_flits(),
            routers_all_cores_full: all_full,
            routers_half_cores_full: half_full,
            routers_blocked_port: blocked,
            delivered_flits: self.stats.delivered_flits - d0,
            retransmissions: self.stats.retransmissions - r0,
            uncorrectable_faults: self.stats.uncorrectable_faults - u0,
        });
        // Side-band alert evaluation on the same window cadence. Inputs
        // are simulation-derived integers only, so the verdicts are
        // deterministic for a given run; the alerts live in the telemetry
        // plane and trace bus, never in `stats`.
        if let Some(mut tel) = self.telemetry.take() {
            let snap = self.stats.snapshots.last().expect("just pushed");
            let mut max_credit_age = 0u64;
            for r in &self.routers {
                for d in 0..4 {
                    let Some(out) = r.outputs[d].as_ref() else {
                        continue;
                    };
                    for e in &out.entries {
                        max_credit_age = max_credit_age.max(now.saturating_sub(e.entered_at));
                    }
                }
            }
            let obs = crate::telemetry::WindowObs {
                cycle: now,
                p99_latency: None, // filled from the window sketch
                retransmissions: snap.retransmissions,
                delivered_flits: snap.delivered_flits,
                resident_flits: self.resident_flits() as u64,
                max_credit_age,
            };
            for alert in tel.evaluate_window(obs) {
                emit!(
                    self,
                    now,
                    TraceKind::Alert {
                        class: alert.class,
                        value: alert.value,
                        threshold: alert.threshold,
                    }
                );
            }
            self.telemetry = Some(tel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{Direction, PacketId, VcId};

    /// Inject a fixed list of packets at their `created_at` cycles.
    pub struct ListSource {
        pub packets: Vec<Packet>,
    }

    impl TrafficSource for ListSource {
        fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
            let mut i = 0;
            while i < self.packets.len() {
                if self.packets[i].created_at == cycle {
                    out.push(self.packets.remove(i));
                } else {
                    i += 1;
                }
            }
        }
        fn done(&self) -> bool {
            self.packets.is_empty()
        }
    }

    fn pkt(id: u64, cycle: u64, src: u16, dest: u16, len: u8) -> Packet {
        // Low 32 bits of the id carry the creation cycle (see created_at_of).
        Packet::new(
            PacketId((id << 32) | cycle),
            NodeId(src),
            NodeId(dest),
            VcId(0),
            0,
            0,
            len,
            cycle,
        )
    }

    #[test]
    fn single_packet_crosses_one_hop() {
        let mut sim = Simulator::new(SimConfig::paper());
        let mut src = ListSource {
            packets: vec![pkt(1, 0, 0, 1, 1)],
        };
        assert!(sim.run_to_quiescence(200, &mut src), "must drain");
        assert_eq!(sim.stats().delivered_packets, 1);
        assert_eq!(sim.stats().injected_packets, 1);
        // 5-stage pipeline × 2 routers + link ≈ 11±few cycles.
        let lat = sim.stats().avg_latency();
        assert!((8.0..=16.0).contains(&lat), "latency {lat}");
    }

    #[test]
    fn multi_flit_packet_delivers_in_order() {
        let mut sim = Simulator::new(SimConfig::paper());
        let mut src = ListSource {
            packets: vec![pkt(1, 0, 0, 15, 4)],
        };
        assert!(sim.run_to_quiescence(500, &mut src));
        assert_eq!(sim.stats().delivered_packets, 1);
        assert_eq!(sim.stats().delivered_flits, 4);
    }

    #[test]
    fn many_packets_all_deliver_without_faults() {
        let mut sim = Simulator::new(SimConfig::paper());
        let mut packets = Vec::new();
        for i in 0..40u64 {
            packets.push(pkt(i + 1, i, (i % 16) as u16, ((i * 7 + 3) % 16) as u16, 4));
        }
        let mut src = ListSource { packets };
        assert!(sim.run_to_quiescence(4000, &mut src), "must drain");
        assert_eq!(sim.stats().delivered_packets, 40);
        assert_eq!(sim.stats().delivered_flits, 160);
        assert_eq!(sim.stats().retransmissions, 0);
        assert_eq!(sim.stats().uncorrectable_faults, 0);
    }

    #[test]
    fn local_traffic_same_router_delivers() {
        let mut sim = Simulator::new(SimConfig::paper());
        let mut src = ListSource {
            packets: vec![pkt(1, 0, 5, 5, 2)],
        };
        assert!(sim.run_to_quiescence(100, &mut src));
        assert_eq!(sim.stats().delivered_packets, 1);
    }

    #[test]
    fn quiescence_detects_undelivered_flits() {
        let mut sim = Simulator::new(SimConfig::paper());
        let mut src = ListSource {
            packets: vec![pkt(1, 0, 0, 3, 4)],
        };
        sim.run(3, &mut src);
        assert!(!sim.is_quiescent(), "flits still in flight");
    }

    fn mount_dest_trojan(sim: &mut Simulator, dest: u16) -> LinkId {
        use noc_trojan::{TargetSpec, TaspConfig, TaspHt};
        // The XY route 0→1 uses the eastward link out of router 0.
        let link = sim
            .mesh()
            .link_out(
                NodeId(0),
                crate::routing::xy_direction(sim.mesh(), NodeId(0), NodeId(dest)),
            )
            .unwrap();
        let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(dest as u8)));
        let faults = std::mem::replace(sim.link_faults_mut(link), LinkFaults::healthy(0));
        *sim.link_faults_mut(link) = faults.with_trojan(ht);
        link
    }

    #[test]
    fn armed_trojan_without_mitigation_starves_the_flow() {
        let mut sim = Simulator::new(SimConfig::paper_unprotected());
        let link = mount_dest_trojan(&mut sim, 1);
        sim.arm_trojans(true);
        let mut src = ListSource {
            packets: vec![pkt(1, 0, 0, 1, 1)],
        };
        let drained = sim.run_to_quiescence(1000, &mut src);
        assert!(!drained, "targeted packet must never deliver");
        assert_eq!(sim.stats().delivered_packets, 0);
        assert!(sim.stats().retransmissions > 10, "NACK storm expected");
        assert!(sim.stats().uncorrectable_faults > 10);
        let _ = link;
    }

    #[test]
    fn mitigation_defeats_the_trojan() {
        let mut sim = Simulator::new(SimConfig::paper());
        mount_dest_trojan(&mut sim, 1);
        sim.arm_trojans(true);
        let mut src = ListSource {
            packets: vec![pkt(1, 0, 0, 1, 1)],
        };
        let drained = sim.run_to_quiescence(1000, &mut src);
        assert!(drained, "L-Ob must get the packet through");
        assert_eq!(sim.stats().delivered_packets, 1);
        // A handful of retransmissions while the detector converges, then
        // the obfuscated retry crosses cleanly.
        assert!(sim
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::ObfuscationSucceeded { .. })));
    }

    #[test]
    fn mitigation_handles_multi_flit_targeted_packets() {
        let mut sim = Simulator::new(SimConfig::paper());
        mount_dest_trojan(&mut sim, 1);
        sim.arm_trojans(true);
        let mut packets: Vec<Packet> = (0..6u64).map(|i| pkt(i + 1, i * 3, 0, 1, 4)).collect();
        packets
            .iter_mut()
            .for_each(|p| p.vc = VcId((p.id.0 % 4) as u8));
        let mut src = ListSource { packets };
        assert!(sim.run_to_quiescence(4000, &mut src));
        assert_eq!(sim.stats().delivered_packets, 6);
        assert_eq!(sim.stats().delivered_flits, 24);
    }

    #[test]
    fn disarmed_trojan_never_interferes() {
        let mut sim = Simulator::new(SimConfig::paper());
        mount_dest_trojan(&mut sim, 1);
        // Kill switch stays down.
        let mut src = ListSource {
            packets: vec![pkt(1, 0, 0, 1, 1)],
        };
        assert!(sim.run_to_quiescence(200, &mut src));
        assert_eq!(sim.stats().retransmissions, 0);
    }

    #[test]
    fn transient_faults_are_corrected_or_retried() {
        let mut sim = Simulator::new(SimConfig::paper());
        let link = sim.mesh().link_out(NodeId(0), Direction::East).unwrap();
        sim.link_faults_mut(link).transient_bit_prob = 0.002;
        let mut packets = Vec::new();
        for i in 0..20u64 {
            packets.push(pkt(i + 1, i * 2, 0, 1, 4));
        }
        let mut src = ListSource { packets };
        assert!(
            sim.run_to_quiescence(8000, &mut src),
            "transients must not kill the flow"
        );
        assert_eq!(sim.stats().delivered_packets, 20);
        assert!(
            sim.stats().corrected_faults + sim.stats().uncorrectable_faults > 0,
            "fault layer must have fired at p=0.002 over 80 flits × 72 bits"
        );
    }

    #[test]
    fn permanent_fault_is_found_by_bist() {
        use crate::fault::StuckWires;
        let mut sim = Simulator::new(SimConfig::paper());
        let link = sim.mesh().link_out(NodeId(0), Direction::East).unwrap();
        // Stick two wires so SECDED always sees a double error.
        sim.link_faults_mut(link).stuck = StuckWires {
            stuck_one: (1 << 10) | (1 << 20),
            stuck_zero: 0,
        };
        let mut src = ListSource {
            packets: vec![pkt(1, 0, 0, 1, 1)],
        };
        sim.run_to_quiescence(300, &mut src);
        assert!(
            sim.events()
                .iter()
                .any(|e| matches!(e, SimEvent::BistRan { passed: false, .. })),
            "BIST must find the stuck wires: {:?}",
            sim.events()
        );
    }

    #[test]
    fn dead_link_with_table_reroute_still_delivers() {
        use crate::routing::RouteTables;
        let mut sim = Simulator::new(SimConfig::paper());
        let dead = sim.mesh().link_out(NodeId(0), Direction::East).unwrap();
        let tables = RouteTables::build(sim.mesh(), &[dead]);
        sim.set_routing(Routing::Table(tables));
        sim.set_dead_links(vec![dead]);
        let mut src = ListSource {
            packets: vec![pkt(1, 0, 0, 1, 1)],
        };
        assert!(sim.run_to_quiescence(300, &mut src));
        assert_eq!(sim.stats().delivered_packets, 1);
        // Detour 0→4→5→1 (3 hops instead of 1): latency grows accordingly.
        assert!(sim.stats().avg_latency() > 15.0);
    }

    #[test]
    fn retry_budget_quarantines_unmitigated_trojan_link() {
        let mut cfg = SimConfig::paper_unprotected();
        cfg.retry_budget = Some(4);
        cfg.check_invariants_every = Some(16);
        let mut sim = Simulator::new(cfg);
        let link = mount_dest_trojan(&mut sim, 1);
        sim.arm_trojans(true);
        let mut src = ListSource {
            packets: vec![pkt(1, 0, 0, 1, 2), pkt(2, 4, 0, 1, 2)],
        };
        let drained = sim
            .run_to_quiescence_guarded(4000, &mut src)
            .expect("no fatal error");
        assert!(sim.dead_links().contains(&link), "trojan link quarantined");
        assert_eq!(sim.stats().quarantined_links, 1);
        assert!(sim
            .events()
            .iter()
            .any(|e| matches!(e, SimEvent::LinkQuarantined { .. })));
        // Victims are written off, survivors reroute: either way the
        // network drains and the books balance.
        assert!(drained, "network must drain after degradation");
        assert!(sim.stats().flits_conserved());
        assert!(sim.stats().packets_conserved());
    }

    #[test]
    fn watchdog_diagnoses_livelock_and_quarantine_recovers() {
        use crate::error::SimError;
        use crate::watchdog::WatchdogConfig;
        let mut cfg = SimConfig::paper_unprotected();
        cfg.watchdog = Some(WatchdogConfig {
            global_stall_cycles: 2000,
            credit_stall_cycles: 1000,
            retx_attempt_limit: 8,
        });
        let mut sim = Simulator::new(cfg);
        let link = mount_dest_trojan(&mut sim, 1);
        sim.arm_trojans(true);
        let mut src = ListSource {
            packets: vec![pkt(1, 0, 0, 1, 2)],
        };
        let err = sim
            .run_to_quiescence_guarded(4000, &mut src)
            .expect_err("livelock must be diagnosed, not spun through");
        let SimError::Stalled(report) = err else {
            panic!("expected a stall, got {err:?}");
        };
        let (router, dir) = report.culprit().expect("livelock names its port");
        let culprit = sim.mesh().link_out(router, dir).expect("port has a link");
        assert_eq!(culprit, link, "watchdog must blame the trojan link");
        sim.quarantine_link(culprit)
            .expect("one quarantine cannot disconnect the paper mesh");
        let drained = sim
            .run_to_quiescence_guarded(4000, &mut src)
            .expect("clean after quarantine");
        assert!(drained);
        assert!(sim.stats().flits_conserved());
        assert!(sim.check_invariants().is_empty());
    }

    #[test]
    fn watchdog_global_backstop_fires_without_a_culprit() {
        use crate::error::SimError;
        use crate::watchdog::{StallKind, WatchdogConfig};
        let mut cfg = SimConfig::paper_unprotected();
        cfg.watchdog = Some(WatchdogConfig {
            global_stall_cycles: 200,
            credit_stall_cycles: u64::MAX,
            retx_attempt_limit: u32::MAX,
        });
        let mut sim = Simulator::new(cfg);
        mount_dest_trojan(&mut sim, 1);
        sim.arm_trojans(true);
        let mut src = ListSource {
            packets: vec![pkt(1, 0, 0, 1, 2)],
        };
        let err = sim
            .run_to_quiescence_guarded(4000, &mut src)
            .expect_err("the backstop must fire");
        let SimError::Stalled(report) = err else {
            panic!("expected a stall, got {err:?}");
        };
        assert!(matches!(report.kind, StallKind::GlobalDeadlock { .. }));
        assert_eq!(report.culprit(), None);
    }

    #[test]
    fn resilient_config_runs_clean_traffic_without_tripping() {
        let mut sim = Simulator::new(SimConfig::paper_resilient());
        let mut packets = Vec::new();
        for i in 0..30u64 {
            packets.push(pkt(i + 1, i, (i % 16) as u16, ((i * 5 + 2) % 16) as u16, 4));
        }
        let mut src = ListSource { packets };
        let drained = sim
            .run_to_quiescence_guarded(4000, &mut src)
            .expect("a healthy mesh must not trip any guard");
        assert!(drained);
        assert_eq!(sim.stats().delivered_packets, 30);
        assert_eq!(sim.stats().dropped_flits, 0);
        assert!(sim.stats().flits_conserved());
    }

    #[test]
    fn quarantine_purge_keeps_invariants_and_conservation_under_load() {
        use crate::watchdog::WatchdogConfig;
        let mut cfg = SimConfig::paper_unprotected();
        cfg.retry_budget = Some(4);
        cfg.check_invariants_every = Some(8);
        cfg.watchdog = Some(WatchdogConfig::default());
        let mut sim = Simulator::new(cfg);
        let link = mount_dest_trojan(&mut sim, 1);
        sim.arm_trojans(true);
        // Cross-traffic shares the condemned link while victims' flits
        // spread over several routers — the interesting purge paths.
        let mut packets = Vec::new();
        for i in 0..40u64 {
            let src_r = [0u16, 4, 8, 2, 12][(i % 5) as usize];
            let dest = [1u16, 1, 5, 1, 3][(i % 5) as usize];
            let mut p = pkt(i + 1, i, src_r, dest, 4);
            p.vc = VcId((i % 4) as u8);
            packets.push(p);
        }
        let mut src = ListSource { packets };
        let drained = sim
            .run_to_quiescence_guarded(20_000, &mut src)
            .expect("credit books must stay sound through the purge");
        assert!(drained, "mesh must drain after quarantine");
        assert!(sim.dead_links().contains(&link));
        let s = sim.stats();
        assert!(
            s.flits_conserved(),
            "delivered {} + dropped {} != injected {}",
            s.delivered_flits,
            s.dropped_flits,
            s.injected_flits
        );
        assert!(s.packets_conserved());
        assert!(sim.check_invariants().is_empty());
    }

    #[test]
    fn tdm_contains_interference_between_domains() {
        use crate::config::{QosMode, RetxScheme};
        let mut cfg = SimConfig::paper();
        cfg.qos = QosMode::Tdm { domains: 2 };
        cfg.retx_scheme = RetxScheme::PerVc;
        let mut sim = Simulator::new(cfg);
        // Domain 0 (VC 0) and domain 1 (VC 1) flows share the 0→1 link.
        let mut packets = Vec::new();
        for i in 0..10u64 {
            let mut p = pkt(i + 1, i * 4, 0, 1, 2);
            p.vc = VcId((i % 2) as u8);
            packets.push(p);
        }
        let mut src = ListSource { packets };
        assert!(sim.run_to_quiescence(2000, &mut src));
        assert_eq!(sim.stats().delivered_packets, 10);
    }
}
