//! Router output units: retransmission buffers, output-VC bookkeeping,
//! credits toward the downstream input port, and the L-Ob controller.

use crate::arbiter::RoundRobin;
use crate::config::RetxScheme;
use crate::message::ObfWire;
use noc_mitigation::{LobModule, LobPlan, ObfuscationMethod};
use noc_types::{Flit, PacketId, VcId};

/// Send state of one retransmission slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Must be (re)driven onto the link.
    NeedSend,
    /// On the wire / awaiting ACK.
    AwaitAck,
}

/// One occupied retransmission slot.
#[derive(Debug, Clone)]
pub struct RetxEntry {
    /// The buffered flit.
    pub flit: Flit,
    /// Downstream input VC the flit is committed to.
    pub vc: VcId,
    /// Send state of the slot.
    pub state: SlotState,
    /// Times this flit has been driven onto the link.
    pub attempts: u32,
    /// NACK count (for blocked-port statistics).
    pub nacks: u32,
    /// Obfuscation to apply on the next send.
    pub obf: Option<ObfWire>,
    /// Cycle of the most recent launch.
    pub sent_at: u64,
    /// Cycle this entry entered the buffer (for blocked-port age).
    pub entered_at: u64,
}

/// One network output port.
#[derive(Debug)]
pub struct OutputUnit {
    /// Occupied slots in arrival (FIFO) order.
    pub entries: Vec<RetxEntry>,
    /// Slot budget: the shared pool size under `Output`, or the per-VC
    /// depth under `PerVc`.
    pub capacity: usize,
    /// Retransmission buffer organisation.
    pub scheme: RetxScheme,
    /// Which packet currently owns each downstream input VC.
    pub vc_owner: Vec<Option<PacketId>>,
    /// Credits (free downstream buffer slots) per VC.
    pub credits: Vec<u8>,
    /// L-Ob controller for this link.
    pub lob: LobModule,
    /// Round-robin over slots for fair resend selection.
    pub(crate) send_rr: RoundRobin,
    /// Cycle of the last delivery progress (ACK received). A port with
    /// waiting work and no progress is stalled by back-pressure or a
    /// retransmission livelock.
    pub last_progress: u64,
    /// Destinations whose flits keep drawing trojan faults on this link:
    /// once a method is logged, "similar flits" are obfuscated proactively
    /// on their first traversal (the paper's method log speeding up "the
    /// selection process for similar flits having the same problem").
    pub(crate) protected_dests: Vec<u16>,
    /// Flits driven onto the link (including retries).
    pub flits_sent: u64,
    /// Launches that were retries (attempt ≥ 2).
    pub retransmissions: u64,
    /// Credits drained through the `LeakCredit` sabotage hook (conformance
    /// self-tests only). Lives on the output unit — the link's home — so the
    /// count is identical at every shard/thread count.
    pub(crate) sab_credit_seen: u64,
}

impl OutputUnit {
    /// Construct an output unit for a link with the given VC geometry.
    pub fn new(vcs: u8, vc_depth: u8, capacity: usize, scheme: RetxScheme) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            scheme,
            vc_owner: vec![None; vcs as usize],
            credits: vec![vc_depth; vcs as usize],
            lob: LobModule::new(),
            send_rr: RoundRobin::new(capacity.max(1)),
            last_progress: 0,
            protected_dests: Vec::new(),
            flits_sent: 0,
            retransmissions: 0,
            sab_credit_seen: 0,
        }
    }

    /// Whether this unit holds no state a future cycle could act on
    /// without a new arrival: no retransmission entries (pending sends
    /// or un-ACKed flits) and no downstream VC still owned by an
    /// in-flight wormhole. The fast-forward engine's defence-in-depth
    /// audit demands this of every unit once the activity bitmaps read
    /// clear — a VC ownership that outlived its packet's tail would
    /// otherwise be jumped over and silently block traffic after the
    /// skip.
    pub fn is_skip_transparent(&self) -> bool {
        self.entries.is_empty() && self.vc_owner.iter().all(Option::is_none)
    }

    /// Whether a new flit for `vc` can enter the retransmission stage.
    /// Under [`RetxScheme::PerVc`] each VC owns a full `capacity`-deep
    /// buffer (the paper's "retransmission buffers within each VC",
    /// Fig. 5), so a NACKed flit only ever backs up its own VC.
    pub fn has_slot(&self, vc: VcId) -> bool {
        match self.scheme {
            RetxScheme::Output => self.entries.len() < self.capacity,
            RetxScheme::PerVc => self.entries.iter().filter(|e| e.vc == vc).count() < self.capacity,
        }
    }

    /// Total slots this output can ever hold at once.
    pub fn total_capacity(&self) -> usize {
        match self.scheme {
            RetxScheme::Output => self.capacity,
            RetxScheme::PerVc => self.capacity * self.vc_owner.len(),
        }
    }

    /// Admit a flit from the crossbar (ST stage).
    pub fn push(&mut self, flit: Flit, vc: VcId, cycle: u64) {
        debug_assert!(self.has_slot(vc));
        self.entries.push(RetxEntry {
            flit,
            vc,
            state: SlotState::NeedSend,
            attempts: 0,
            nacks: 0,
            obf: None,
            sent_at: 0,
            entered_at: cycle,
        });
    }

    /// Pick the next entry to drive onto the link, if any. Round-robin over
    /// slots, honouring per-VC ordering. Returns the entry index.
    ///
    /// Candidates: `NeedSend` entries whose VC isn't blocked by an older
    /// troubled entry (a same-VC elder that was NACKed or still needs a
    /// send — go-back-N ordering: the downstream must never see a sequence
    /// gap twice), on an open TDM slot for their packet's class. The
    /// predicate is evaluated lazily inside the arbiter scan, so the
    /// per-launch eligibility vector is gone from the hot path.
    pub fn select_send(&mut self, tdm_open: impl Fn(u8) -> bool) -> Option<usize> {
        let n = self.entries.len();
        if n == 0 {
            return None;
        }
        // Rebuild the arbiter width lazily if capacity differs.
        if self.send_rr.len() != self.total_capacity().max(1) {
            self.send_rr = RoundRobin::new(self.total_capacity().max(1));
        }
        let entries = &self.entries;
        self.send_rr.grant(|i| {
            i < n && {
                let e = &entries[i];
                e.state == SlotState::NeedSend
                    && tdm_open(e.flit.header.vc.0)
                    && !entries[..i]
                        .iter()
                        .any(|o| o.vc == e.vc && (o.nacks > 0 || o.state == SlotState::NeedSend))
            }
        })
    }

    /// Mark entry `idx` as launched.
    pub fn mark_sent(&mut self, idx: usize, cycle: u64) {
        let e = &mut self.entries[idx];
        e.state = SlotState::AwaitAck;
        e.attempts += 1;
        e.sent_at = cycle;
        self.flits_sent += 1;
        if e.attempts > 1 {
            self.retransmissions += 1;
        }
    }

    /// Handle an ACK for `flit`: drop the slot, log obfuscation success,
    /// and free the output VC if the tail just delivered. Returns the
    /// delivered entry.
    pub fn ack(
        &mut self,
        flit_id: noc_types::FlitId,
        obf_success: Option<LobPlan>,
        cycle: u64,
    ) -> Option<RetxEntry> {
        let idx = self.entries.iter().position(|e| e.flit.id == flit_id)?;
        self.last_progress = cycle;
        let entry = self.entries.remove(idx);
        if let Some(plan) = obf_success {
            self.lob.log_success(plan);
        }
        if entry.flit.kind.closes_packet() {
            if let Some(owner) = self.vc_owner.get_mut(entry.vc.index()) {
                if *owner == Some(entry.flit.packet) {
                    *owner = None;
                }
            }
        }
        Some(entry)
    }

    /// Handle a NACK: requeue for (re)send, attaching the obfuscation plan
    /// the downstream detector requested (when mitigation is on).
    pub fn nack(&mut self, flit_id: noc_types::FlitId, lob_attempt: Option<u32>) {
        let Some(idx) = self.entries.iter().position(|e| e.flit.id == flit_id) else {
            return;
        };
        // Capture the plan before taking a mutable borrow of the entry.
        let planned = lob_attempt.map(|n| (self.lob.plan_for_attempt(n as usize), n));
        let e = &mut self.entries[idx];
        e.state = SlotState::NeedSend;
        e.nacks += 1;
        let dest = e.flit.header.dest.0;
        if let Some((plan, attempt)) = planned {
            e.obf = Some(ObfWire {
                plan,
                attempt,
                partner: None,
            });
            self.lob.log_attempt();
            if !self.protected_dests.contains(&dest) {
                self.protected_dests.push(dest);
            }
        }
    }

    /// Force obfuscation onto entry `idx` after its retry budget ran out
    /// without the downstream detector ever requesting L-Ob (escalation
    /// step of the bounded-retransmission ladder). Uses the link's logged
    /// plan when one exists, else starts the ladder from the bottom.
    /// Returns the attempt count at escalation, or `None` when the entry
    /// is already obfuscated (nothing to escalate to).
    pub fn force_obfuscate(&mut self, idx: usize) -> Option<u32> {
        if self.entries[idx].obf.is_some() {
            return None;
        }
        let plan = self
            .lob
            .logged_plan()
            .unwrap_or_else(|| self.lob.plan_for_attempt(0));
        let attempts = self.entries[idx].attempts;
        self.entries[idx].obf = Some(ObfWire {
            plan,
            attempt: 0,
            partner: None,
        });
        self.lob.log_attempt();
        Some(attempts)
    }

    /// Proactively obfuscate a flit heading to a destination this link has
    /// learned is trojan bait, once a working method is logged. First-time
    /// flits then cross safely for only the undo penalty instead of paying
    /// two NACK rounds each.
    pub fn maybe_protect(&mut self, idx: usize) {
        if self.entries[idx].obf.is_some() {
            return;
        }
        let Some(plan) = self.lob.logged_plan() else {
            return;
        };
        if self
            .protected_dests
            .contains(&self.entries[idx].flit.header.dest.0)
        {
            self.entries[idx].obf = Some(ObfWire {
                plan,
                attempt: 0,
                partner: None,
            });
        }
    }

    /// For a `Scramble` plan on entry `idx`, find a partner entry (a
    /// different flit in this buffer that also needs sending and belongs to
    /// a different VC, so the receiver's per-VC ordering is unaffected).
    pub fn find_scramble_partner(&self, idx: usize) -> Option<usize> {
        let vc = self.entries[idx].vc;
        (0..self.entries.len()).find(|&j| {
            j != idx && self.entries[j].vc != vc && self.entries[j].state == SlotState::NeedSend
        })
    }

    /// Resolve the wire plan for entry `idx` right before launch: a
    /// `Scramble` plan without an available partner falls back to full-word
    /// inversion so the send never stalls indefinitely.
    pub fn resolve_obf_for_send(&mut self, idx: usize) -> Option<ObfWire> {
        let obf = self.entries[idx].obf?;
        if obf.plan.method != ObfuscationMethod::Scramble {
            return Some(obf);
        }
        if let Some(j) = self.find_scramble_partner(idx) {
            let partner = self.entries[j].flit.id;
            let key = self.entries[j].flit.word;
            let wired = ObfWire {
                partner: Some(partner),
                ..obf
            };
            self.entries[idx].obf = Some(wired);
            // Stash the key in the entry's plan application; caller reads
            // the partner's word via `entries[j]`.
            let _ = key;
            Some(wired)
        } else {
            let fallback = ObfWire {
                plan: LobPlan {
                    method: ObfuscationMethod::Invert,
                    granularity: noc_mitigation::Granularity::Full,
                },
                attempt: obf.attempt,
                partner: None,
            };
            self.entries[idx].obf = Some(fallback);
            Some(fallback)
        }
    }

    /// Settle a batch of same-cycle credit returns in one pass:
    /// `counts[v]` credits arrived for VC `v`. Exactly the per-message
    /// `credits[vc] += 1` loop — addition commutes, so the arrival order
    /// the message path preserves is unobservable here. Callers keep the
    /// per-message path whenever a sabotage hook is configured (the
    /// `LeakCredit` counter is order-sensitive).
    pub(crate) fn settle_credits(&mut self, counts: &[u32], vc_depth: u8) {
        for (c, &n) in self.credits.iter_mut().zip(counts) {
            if n != 0 {
                *c += n as u8;
                debug_assert!(*c <= vc_depth);
            }
        }
    }

    /// Age (cycles) of the oldest entry still fighting for delivery; used
    /// by the blocked-port statistic.
    pub fn oldest_entry_age(&self, cycle: u64) -> Option<u64> {
        self.entries
            .iter()
            .map(|e| cycle.saturating_sub(e.entered_at))
            .max()
    }

    /// Occupied retransmission slots (output-port utilisation statistic).
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer cannot admit any flit at all (fully stalled).
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.total_capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_types::{FlitId, FlitKind, Header, NodeId};

    fn flit(id: u64, vc: u8, kind: FlitKind, seq: u8) -> (Flit, VcId) {
        let h = Header {
            src: NodeId(0),
            dest: NodeId(3),
            vc: VcId(vc),
            mem_addr: 0,
            thread: 0,
            len: 4,
        };
        let f = if kind.carries_header() {
            Flit::head(FlitId(id), PacketId(id >> 4), kind, h)
        } else {
            Flit::payload(FlitId(id), PacketId(id >> 4), kind, seq, h, id)
        };
        (f, VcId(vc))
    }

    fn unit() -> OutputUnit {
        OutputUnit::new(4, 4, 4, RetxScheme::Output)
    }

    #[test]
    fn push_send_ack_lifecycle() {
        let mut u = unit();
        let (f, vc) = flit(16, 0, FlitKind::Head, 0);
        u.push(f, vc, 10);
        let idx = u.select_send(|_| true).expect("sendable");
        u.mark_sent(idx, 11);
        assert_eq!(u.entries[idx].state, SlotState::AwaitAck);
        assert!(u.ack(FlitId(16), None, 2).is_some());
        assert!(u.entries.is_empty());
        assert_eq!(u.flits_sent, 1);
        assert_eq!(u.retransmissions, 0);
    }

    #[test]
    fn nack_requeues_and_counts_retransmission() {
        let mut u = unit();
        let (f, vc) = flit(16, 0, FlitKind::Head, 0);
        u.push(f, vc, 0);
        let idx = u.select_send(|_| true).unwrap();
        u.mark_sent(idx, 1);
        u.nack(FlitId(16), None);
        assert_eq!(u.entries[0].state, SlotState::NeedSend);
        assert_eq!(u.entries[0].nacks, 1);
        let idx = u.select_send(|_| true).unwrap();
        u.mark_sent(idx, 4);
        assert_eq!(u.retransmissions, 1);
    }

    #[test]
    fn nack_with_lob_attaches_ladder_plan() {
        let mut u = unit();
        let (f, vc) = flit(16, 0, FlitKind::Head, 0);
        u.push(f, vc, 0);
        let idx = u.select_send(|_| true).unwrap();
        u.mark_sent(idx, 1);
        u.nack(FlitId(16), Some(0));
        let obf = u.entries[0].obf.expect("plan attached");
        assert_eq!(obf.plan, LobPlan::LADDER[0]);
        assert_eq!(obf.attempt, 0);
    }

    #[test]
    fn younger_same_vc_flit_blocked_behind_nacked_elder() {
        let mut u = unit();
        let (f1, vc) = flit(16, 0, FlitKind::Head, 0);
        let (f2, _) = flit(17, 0, FlitKind::Body, 1);
        u.push(f1, vc, 0);
        u.push(f2, vc, 0);
        let idx = u.select_send(|_| true).unwrap();
        assert_eq!(u.entries[idx].flit.id, FlitId(16));
        u.mark_sent(idx, 1);
        u.nack(FlitId(16), None);
        // Only the NACKed elder may send; the younger same-VC body waits.
        let idx = u.select_send(|_| true).unwrap();
        assert_eq!(u.entries[idx].flit.id, FlitId(16));
        u.mark_sent(idx, 2);
        assert!(
            u.select_send(|_| true).is_none(),
            "younger same-VC flit must wait for the elder's ACK"
        );
        u.ack(FlitId(16), None, 3);
        let idx = u.select_send(|_| true).unwrap();
        assert_eq!(u.entries[idx].flit.id, FlitId(17));
    }

    #[test]
    fn different_vc_traffic_flows_around_a_nacked_flit() {
        let mut u = unit();
        let (f1, vc1) = flit(16, 0, FlitKind::Head, 0);
        let (f2, vc2) = flit(32, 1, FlitKind::Head, 0);
        u.push(f1, vc1, 0);
        u.push(f2, vc2, 0);
        let i = u.select_send(|_| true).unwrap();
        u.mark_sent(i, 1);
        u.nack(u.entries[i.min(u.entries.len() - 1)].flit.id, None);
        // Whichever got NACKed, the other VC can still send.
        let sendable: Vec<_> = (0..4)
            .filter_map(|_| {
                let idx = u.select_send(|_| true)?;
                u.mark_sent(idx, 2);
                Some(u.entries[idx].flit.id)
            })
            .collect();
        assert!(!sendable.is_empty());
    }

    #[test]
    fn per_vc_scheme_partitions_capacity() {
        let mut u = OutputUnit::new(4, 4, 2, RetxScheme::PerVc);
        // Each VC owns its own 2-deep buffer (total capacity 8).
        assert_eq!(u.total_capacity(), 8);
        for i in 0..2 {
            let (f, vc) = flit(16 + i, 0, FlitKind::Single, 0);
            u.push(f, vc, 0);
        }
        // VC 0 is now full; VC 1 is untouched.
        assert!(!u.has_slot(VcId(0)));
        assert!(u.has_slot(VcId(1)));
        // The shared scheme would have admitted more into VC 0.
        let shared = OutputUnit::new(4, 4, 4, RetxScheme::Output);
        assert_eq!(shared.total_capacity(), 4);
    }

    #[test]
    fn tail_ack_frees_output_vc() {
        let mut u = unit();
        u.vc_owner[0] = Some(PacketId(1));
        let (f, vc) = flit(16, 0, FlitKind::Tail, 3);
        u.push(f, vc, 0);
        let i = u.select_send(|_| true).unwrap();
        u.mark_sent(i, 1);
        u.ack(FlitId(16), None, 3);
        assert_eq!(u.vc_owner[0], None);
    }

    #[test]
    fn scramble_finds_cross_vc_partner_or_falls_back() {
        let mut u = unit();
        let (f1, vc1) = flit(16, 0, FlitKind::Head, 0);
        u.push(f1, vc1, 0);
        u.entries[0].obf = Some(ObfWire {
            plan: LobPlan {
                method: ObfuscationMethod::Scramble,
                granularity: noc_mitigation::Granularity::Full,
            },
            attempt: 0,
            partner: None,
        });
        // Alone: falls back to invert.
        let resolved = u.resolve_obf_for_send(0).unwrap();
        assert_eq!(resolved.plan.method, ObfuscationMethod::Invert);
        // With a cross-VC companion: scramble pairs with it.
        u.entries[0].obf = Some(ObfWire {
            plan: LobPlan {
                method: ObfuscationMethod::Scramble,
                granularity: noc_mitigation::Granularity::Full,
            },
            attempt: 0,
            partner: None,
        });
        let (f2, vc2) = flit(32, 1, FlitKind::Head, 0);
        u.push(f2, vc2, 0);
        let resolved = u.resolve_obf_for_send(0).unwrap();
        assert_eq!(resolved.plan.method, ObfuscationMethod::Scramble);
        assert_eq!(resolved.partner, Some(FlitId(32)));
    }

    #[test]
    fn force_obfuscate_escalates_unobfuscated_entries_once() {
        let mut u = unit();
        let (f, vc) = flit(16, 0, FlitKind::Head, 0);
        u.push(f, vc, 0);
        let idx = u.select_send(|_| true).unwrap();
        u.mark_sent(idx, 1);
        u.nack(FlitId(16), None); // plain NACK: the detector offered no plan
        assert!(u.entries[0].obf.is_none());
        assert_eq!(
            u.force_obfuscate(0),
            Some(1),
            "reports attempts at escalation"
        );
        assert!(u.entries[0].obf.is_some());
        assert_eq!(
            u.force_obfuscate(0),
            None,
            "already obfuscated: no rung left"
        );
    }

    #[test]
    fn tdm_gating_blocks_closed_domains() {
        let mut u = unit();
        let (f, vc) = flit(16, 1, FlitKind::Head, 0);
        u.push(f, vc, 0);
        assert!(u.select_send(|vc| vc == 0).is_none(), "domain closed");
        assert!(u.select_send(|vc| vc == 1).is_some());
    }
}
