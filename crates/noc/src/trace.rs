//! Structured event tracing: a zero-cost-when-disabled event bus over the
//! whole flit lifecycle, with a bounded ring-buffer recorder, pluggable
//! sinks, and the forensics queries the paper's threat analysis reasons
//! over.
//!
//! # Event taxonomy
//!
//! [`TraceKind`] covers three layers of the stack:
//!
//! * **flit lifecycle** — inject, link launch (with any L-Ob plan on the
//!   wire), ECC correct/detect at ingress, accept/NACK verdicts,
//!   ejection, and explicit quarantine drops;
//! * **mitigation** — detector classification changes, L-Ob method
//!   selections and retry-budget escalations, BIST scans;
//! * **resilience** — watchdog verdicts and link quarantines.
//!
//! # Recording discipline
//!
//! Tracing is armed by [`TraceConfig`] on the simulator configuration.
//! When disarmed the simulator holds no recorder and every emission site
//! is a single `Option` test — no event is constructed, so statistics are
//! bit-identical with tracing on or off. When armed, records land in a
//! bounded ring buffer (oldest evicted first, evictions counted) and are
//! optionally forwarded to a [`TraceSink`] *before* buffering, so a JSONL
//! file sink sees the complete stream even when the ring wraps.
//!
//! # Sinks and formats
//!
//! * in-memory: the ring buffer itself (tests, forensics queries), or a
//!   [`ChannelSink`] for streaming assertions;
//! * [`JsonlSink`]: one flat JSON object per line, schema-stable
//!   (validated by the `trace_validate` binary);
//! * [`chrome_trace`]: the Chrome `trace_event` JSON array format, so a
//!   run opens directly in `chrome://tracing` or Perfetto.

use crate::config::TraceConfig;
use crate::watchdog::StallKind;
use noc_mitigation::{FaultClass, LobPlan};
use noc_types::{Direction, FlitId, LinkId, NodeId, PacketId};
use std::collections::VecDeque;

/// Which watchdog detector fired (the trace-side mirror of
/// [`StallKind`], without the per-kind evidence payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallClass {
    /// Nothing ejected network-wide while flits are resident.
    GlobalDeadlock,
    /// One output port aged out without delivery progress.
    CreditStall,
    /// One flit replayed past the attempt limit without an ACK.
    RetxLivelock,
}

impl StallClass {
    /// Stable machine-readable label (JSONL `kind` field).
    pub fn label(self) -> &'static str {
        match self {
            StallClass::GlobalDeadlock => "global_deadlock",
            StallClass::CreditStall => "credit_stall",
            StallClass::RetxLivelock => "retx_livelock",
        }
    }

    /// Parse a [`StallClass::label`] back.
    pub fn from_label(s: &str) -> Option<StallClass> {
        match s {
            "global_deadlock" => Some(StallClass::GlobalDeadlock),
            "credit_stall" => Some(StallClass::CreditStall),
            "retx_livelock" => Some(StallClass::RetxLivelock),
            _ => None,
        }
    }
}

impl From<StallKind> for StallClass {
    fn from(k: StallKind) -> Self {
        match k {
            StallKind::GlobalDeadlock { .. } => StallClass::GlobalDeadlock,
            StallKind::CreditStall { .. } => StallClass::CreditStall,
            StallKind::RetxLivelock { .. } => StallClass::RetxLivelock,
        }
    }
}

/// One structured simulator event (the payload of a [`Record`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A flit entered a core's injection queue.
    FlitInjected {
        /// The flit.
        flit: FlitId,
        /// Its packet.
        packet: PacketId,
        /// Injecting core (global core index).
        core: u16,
    },
    /// A flit was driven onto a link (first send or retransmission).
    FlitLaunched {
        /// The flit.
        flit: FlitId,
        /// Its packet.
        packet: PacketId,
        /// The link it crossed.
        link: LinkId,
        /// Launch attempts so far, including this one (1 = first send).
        attempt: u32,
        /// L-Ob plan applied to the wire word, when obfuscated.
        obf: Option<LobPlan>,
    },
    /// SECDED corrected a single-bit error at link ingress.
    EccCorrected {
        /// The flit.
        flit: FlitId,
        /// Its packet.
        packet: PacketId,
        /// The faulty link.
        link: LinkId,
    },
    /// SECDED detected an uncorrectable (multi-bit) error at ingress.
    EccDetected {
        /// The flit.
        flit: FlitId,
        /// Its packet.
        packet: PacketId,
        /// The faulty link.
        link: LinkId,
    },
    /// The receiver NACKed a flit (uncorrectable fault or ordering gap).
    FlitNacked {
        /// The flit.
        flit: FlitId,
        /// Its packet.
        packet: PacketId,
        /// The link whose upstream must replay.
        link: LinkId,
        /// Whether the detector asked the upstream to obfuscate the replay.
        lob_requested: bool,
    },
    /// The receiver accepted a flit into its input buffers.
    FlitAccepted {
        /// The flit.
        flit: FlitId,
        /// Its packet.
        packet: PacketId,
        /// The link it arrived on.
        link: LinkId,
        /// Whether the flit crossed obfuscated (undo penalty applies).
        obfuscated: bool,
    },
    /// A flit ejected to its destination core.
    FlitEjected {
        /// The flit.
        flit: FlitId,
        /// Its packet.
        packet: PacketId,
        /// The delivering router.
        router: NodeId,
    },
    /// A packet was explicitly dropped by a link quarantine purge.
    PacketDropped {
        /// The purged packet.
        packet: PacketId,
        /// The quarantined link it was committed to.
        link: LinkId,
    },
    /// The threat detector changed its belief about a link.
    LinkClassified {
        /// The classified link.
        link: LinkId,
        /// The new fault class.
        class: FaultClass,
    },
    /// The upstream L-Ob attached a plan to a NACKed flit's next send.
    LobSelected {
        /// The flit to be obfuscated.
        flit: FlitId,
        /// Its packet.
        packet: PacketId,
        /// The link the plan defends.
        link: LinkId,
        /// The selected method/granularity.
        plan: LobPlan,
        /// Position on the escalation ladder.
        attempt: u32,
    },
    /// Retry-budget exhaustion forced obfuscation onto a stuck entry.
    LobEscalated {
        /// The stuck flit.
        flit: FlitId,
        /// The link it is stuck on.
        link: LinkId,
        /// Launch attempts at escalation time.
        attempts: u32,
    },
    /// A BIST scan ran on a link.
    BistScan {
        /// The scanned link.
        link: LinkId,
        /// Whether the link passed (no stuck wires found).
        passed: bool,
    },
    /// A watchdog detector fired.
    WatchdogTripped {
        /// Which detector fired.
        class: StallClass,
        /// Blamed router, when the stall names one.
        router: Option<NodeId>,
        /// Blamed output direction, when the stall names one.
        dir: Option<Direction>,
    },
    /// A link was quarantined and its committed packets purged.
    LinkQuarantined {
        /// The quarantined link.
        link: LinkId,
        /// Flits explicitly dropped by the purge.
        dropped_flits: u64,
        /// Packets explicitly dropped by the purge.
        dropped_packets: u64,
    },
    /// A telemetry alert rule fired (`noc::telemetry`'s online DoS
    /// detector, mirrored onto the trace bus).
    Alert {
        /// Which rule class fired.
        class: crate::telemetry::AlertClass,
        /// The observed value that crossed the threshold.
        value: u64,
        /// The effective threshold it crossed.
        threshold: u64,
    },
}

impl TraceKind {
    /// Stable machine-readable event name (JSONL `event` field).
    pub fn label(&self) -> &'static str {
        match self {
            TraceKind::FlitInjected { .. } => "flit_injected",
            TraceKind::FlitLaunched { .. } => "flit_launched",
            TraceKind::EccCorrected { .. } => "ecc_corrected",
            TraceKind::EccDetected { .. } => "ecc_detected",
            TraceKind::FlitNacked { .. } => "flit_nacked",
            TraceKind::FlitAccepted { .. } => "flit_accepted",
            TraceKind::FlitEjected { .. } => "flit_ejected",
            TraceKind::PacketDropped { .. } => "packet_dropped",
            TraceKind::LinkClassified { .. } => "link_classified",
            TraceKind::LobSelected { .. } => "lob_selected",
            TraceKind::LobEscalated { .. } => "lob_escalated",
            TraceKind::BistScan { .. } => "bist_scan",
            TraceKind::WatchdogTripped { .. } => "watchdog_tripped",
            TraceKind::LinkQuarantined { .. } => "link_quarantined",
            TraceKind::Alert { .. } => "alert",
        }
    }
}

/// One timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record {
    /// Simulation cycle the event happened on.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceKind,
}

fn dir_label(d: Direction) -> &'static str {
    match d {
        Direction::East => "east",
        Direction::West => "west",
        Direction::North => "north",
        Direction::South => "south",
    }
}

fn dir_from_label(s: &str) -> Option<Direction> {
    match s {
        "east" => Some(Direction::East),
        "west" => Some(Direction::West),
        "north" => Some(Direction::North),
        "south" => Some(Direction::South),
        _ => None,
    }
}

impl Record {
    /// The packet this record concerns, when it names one.
    pub fn packet(&self) -> Option<PacketId> {
        match self.kind {
            TraceKind::FlitInjected { packet, .. }
            | TraceKind::FlitLaunched { packet, .. }
            | TraceKind::EccCorrected { packet, .. }
            | TraceKind::EccDetected { packet, .. }
            | TraceKind::FlitNacked { packet, .. }
            | TraceKind::FlitAccepted { packet, .. }
            | TraceKind::FlitEjected { packet, .. }
            | TraceKind::PacketDropped { packet, .. }
            | TraceKind::LobSelected { packet, .. } => Some(packet),
            _ => None,
        }
    }

    /// The link this record concerns, when it names one.
    pub fn link(&self) -> Option<LinkId> {
        match self.kind {
            TraceKind::FlitLaunched { link, .. }
            | TraceKind::EccCorrected { link, .. }
            | TraceKind::EccDetected { link, .. }
            | TraceKind::FlitNacked { link, .. }
            | TraceKind::FlitAccepted { link, .. }
            | TraceKind::PacketDropped { link, .. }
            | TraceKind::LinkClassified { link, .. }
            | TraceKind::LobSelected { link, .. }
            | TraceKind::LobEscalated { link, .. }
            | TraceKind::BistScan { link, .. }
            | TraceKind::LinkQuarantined { link, .. } => Some(link),
            _ => None,
        }
    }

    /// Serialise as one flat JSON object (the JSONL schema). Field order
    /// is canonical: `cycle`, `event`, then event fields in declaration
    /// order — [`Record::from_jsonl`] round-trips byte-identically.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write;
        let mut s = format!(
            "{{\"cycle\":{},\"event\":\"{}\"",
            self.cycle,
            self.kind.label()
        );
        match self.kind {
            TraceKind::FlitInjected { flit, packet, core } => {
                let _ = write!(
                    s,
                    ",\"flit\":{},\"packet\":{},\"core\":{}",
                    flit.0, packet.0, core
                );
            }
            TraceKind::FlitLaunched {
                flit,
                packet,
                link,
                attempt,
                obf,
            } => {
                let _ = write!(
                    s,
                    ",\"flit\":{},\"packet\":{},\"link\":{},\"attempt\":{attempt},\"obf\":",
                    flit.0, packet.0, link.0
                );
                match obf {
                    Some(plan) => {
                        let _ = write!(s, "\"{}\"", plan.label());
                    }
                    None => s.push_str("null"),
                }
            }
            TraceKind::EccCorrected { flit, packet, link }
            | TraceKind::EccDetected { flit, packet, link } => {
                let _ = write!(
                    s,
                    ",\"flit\":{},\"packet\":{},\"link\":{}",
                    flit.0, packet.0, link.0
                );
            }
            TraceKind::FlitNacked {
                flit,
                packet,
                link,
                lob_requested,
            } => {
                let _ = write!(
                    s,
                    ",\"flit\":{},\"packet\":{},\"link\":{},\"lob_requested\":{lob_requested}",
                    flit.0, packet.0, link.0
                );
            }
            TraceKind::FlitAccepted {
                flit,
                packet,
                link,
                obfuscated,
            } => {
                let _ = write!(
                    s,
                    ",\"flit\":{},\"packet\":{},\"link\":{},\"obfuscated\":{obfuscated}",
                    flit.0, packet.0, link.0
                );
            }
            TraceKind::FlitEjected {
                flit,
                packet,
                router,
            } => {
                let _ = write!(
                    s,
                    ",\"flit\":{},\"packet\":{},\"router\":{}",
                    flit.0, packet.0, router.0
                );
            }
            TraceKind::PacketDropped { packet, link } => {
                let _ = write!(s, ",\"packet\":{},\"link\":{}", packet.0, link.0);
            }
            TraceKind::LinkClassified { link, class } => {
                let _ = write!(s, ",\"link\":{},\"class\":\"{}\"", link.0, class.label());
            }
            TraceKind::LobSelected {
                flit,
                packet,
                link,
                plan,
                attempt,
            } => {
                let _ = write!(
                    s,
                    ",\"flit\":{},\"packet\":{},\"link\":{},\"plan\":\"{}\",\"attempt\":{attempt}",
                    flit.0,
                    packet.0,
                    link.0,
                    plan.label()
                );
            }
            TraceKind::LobEscalated {
                flit,
                link,
                attempts,
            } => {
                let _ = write!(
                    s,
                    ",\"flit\":{},\"link\":{},\"attempts\":{attempts}",
                    flit.0, link.0
                );
            }
            TraceKind::BistScan { link, passed } => {
                let _ = write!(s, ",\"link\":{},\"passed\":{passed}", link.0);
            }
            TraceKind::WatchdogTripped { class, router, dir } => {
                let _ = write!(s, ",\"kind\":\"{}\",\"router\":", class.label());
                match router {
                    Some(r) => {
                        let _ = write!(s, "{}", r.0);
                    }
                    None => s.push_str("null"),
                }
                s.push_str(",\"dir\":");
                match dir {
                    Some(d) => {
                        let _ = write!(s, "\"{}\"", dir_label(d));
                    }
                    None => s.push_str("null"),
                }
            }
            TraceKind::LinkQuarantined {
                link,
                dropped_flits,
                dropped_packets,
            } => {
                let _ = write!(
                    s,
                    ",\"link\":{},\"dropped_flits\":{dropped_flits},\"dropped_packets\":{dropped_packets}",
                    link.0
                );
            }
            TraceKind::Alert {
                class,
                value,
                threshold,
            } => {
                let _ = write!(
                    s,
                    ",\"class\":\"{}\",\"value\":{value},\"threshold\":{threshold}",
                    class.label()
                );
            }
        }
        s.push('}');
        s
    }

    /// Parse one JSONL line back into a record. Returns `None` on any
    /// schema violation (unknown event, missing field, malformed JSON).
    pub fn from_jsonl(line: &str) -> Option<Record> {
        let fields = parse_flat_object(line)?;
        let cycle = get_num(&fields, "cycle")?;
        let event = get_str(&fields, "event")?;
        let flit = || get_num(&fields, "flit").map(FlitId);
        let packet = || get_num(&fields, "packet").map(PacketId);
        let link = || get_num(&fields, "link").map(|n| LinkId(n as u16));
        let kind = match event {
            "flit_injected" => TraceKind::FlitInjected {
                flit: flit()?,
                packet: packet()?,
                core: get_num(&fields, "core")? as u16,
            },
            "flit_launched" => TraceKind::FlitLaunched {
                flit: flit()?,
                packet: packet()?,
                link: link()?,
                attempt: get_num(&fields, "attempt")? as u32,
                obf: match lookup(&fields, "obf")? {
                    Val::Null => None,
                    Val::Str(s) => Some(LobPlan::from_label(s)?),
                    _ => return None,
                },
            },
            "ecc_corrected" => TraceKind::EccCorrected {
                flit: flit()?,
                packet: packet()?,
                link: link()?,
            },
            "ecc_detected" => TraceKind::EccDetected {
                flit: flit()?,
                packet: packet()?,
                link: link()?,
            },
            "flit_nacked" => TraceKind::FlitNacked {
                flit: flit()?,
                packet: packet()?,
                link: link()?,
                lob_requested: get_bool(&fields, "lob_requested")?,
            },
            "flit_accepted" => TraceKind::FlitAccepted {
                flit: flit()?,
                packet: packet()?,
                link: link()?,
                obfuscated: get_bool(&fields, "obfuscated")?,
            },
            "flit_ejected" => TraceKind::FlitEjected {
                flit: flit()?,
                packet: packet()?,
                router: NodeId(get_num(&fields, "router")? as u16),
            },
            "packet_dropped" => TraceKind::PacketDropped {
                packet: packet()?,
                link: link()?,
            },
            "link_classified" => TraceKind::LinkClassified {
                link: link()?,
                class: FaultClass::from_label(get_str(&fields, "class")?)?,
            },
            "lob_selected" => TraceKind::LobSelected {
                flit: flit()?,
                packet: packet()?,
                link: link()?,
                plan: LobPlan::from_label(get_str(&fields, "plan")?)?,
                attempt: get_num(&fields, "attempt")? as u32,
            },
            "lob_escalated" => TraceKind::LobEscalated {
                flit: flit()?,
                link: link()?,
                attempts: get_num(&fields, "attempts")? as u32,
            },
            "bist_scan" => TraceKind::BistScan {
                link: link()?,
                passed: get_bool(&fields, "passed")?,
            },
            "watchdog_tripped" => TraceKind::WatchdogTripped {
                class: StallClass::from_label(get_str(&fields, "kind")?)?,
                router: match lookup(&fields, "router")? {
                    Val::Null => None,
                    Val::Num(n) => Some(NodeId(*n as u16)),
                    _ => return None,
                },
                dir: match lookup(&fields, "dir")? {
                    Val::Null => None,
                    Val::Str(s) => Some(dir_from_label(s)?),
                    _ => return None,
                },
            },
            "link_quarantined" => TraceKind::LinkQuarantined {
                link: link()?,
                dropped_flits: get_num(&fields, "dropped_flits")?,
                dropped_packets: get_num(&fields, "dropped_packets")?,
            },
            "alert" => TraceKind::Alert {
                class: crate::telemetry::AlertClass::from_label(get_str(&fields, "class")?)?,
                value: get_num(&fields, "value")?,
                threshold: get_num(&fields, "threshold")?,
            },
            _ => return None,
        };
        Some(Record { cycle, kind })
    }
}

// ---------------------------------------------------------------------
// Minimal flat-JSON reader (objects of numbers/strings/bools/null only;
// exactly what the schema above emits — no dependency required).
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Val {
    Num(u64),
    Str(String),
    Bool(bool),
    Null,
}

fn parse_flat_object(line: &str) -> Option<Vec<(String, Val)>> {
    let s = line.trim();
    let inner = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut fields = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        // Key.
        while chars.peek() == Some(&' ') {
            chars.next();
        }
        if chars.peek().is_none() {
            break;
        }
        if chars.next()? != '"' {
            return None;
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '"' {
                break;
            }
            key.push(c);
        }
        if chars.next()? != ':' {
            return None;
        }
        // Value.
        let val = match chars.peek()? {
            '"' => {
                chars.next();
                let mut v = String::new();
                loop {
                    match chars.next()? {
                        '\\' => v.push(chars.next()?),
                        '"' => break,
                        c => v.push(c),
                    }
                }
                Val::Str(v)
            }
            't' | 'f' | 'n' => {
                let mut word = String::new();
                while chars.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
                    word.push(chars.next()?);
                }
                match word.as_str() {
                    "true" => Val::Bool(true),
                    "false" => Val::Bool(false),
                    "null" => Val::Null,
                    _ => return None,
                }
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                    num.push(chars.next()?);
                }
                Val::Num(num.parse().ok()?)
            }
            _ => return None,
        };
        fields.push((key, val));
        match chars.next() {
            None => break,
            Some(',') => {}
            Some(_) => return None,
        }
    }
    Some(fields)
}

fn lookup<'a>(fields: &'a [(String, Val)], key: &str) -> Option<&'a Val> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_num(fields: &[(String, Val)], key: &str) -> Option<u64> {
    match lookup(fields, key)? {
        Val::Num(n) => Some(*n),
        _ => None,
    }
}

fn get_str<'a>(fields: &'a [(String, Val)], key: &str) -> Option<&'a str> {
    match lookup(fields, key)? {
        Val::Str(s) => Some(s),
        _ => None,
    }
}

fn get_bool(fields: &[(String, Val)], key: &str) -> Option<bool> {
    match lookup(fields, key)? {
        Val::Bool(b) => Some(*b),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

/// A destination records are forwarded to as they are emitted (before the
/// ring buffer, so a sink sees the complete stream even when the ring
/// wraps). Sinks must never fail the simulation: I/O errors are swallowed
/// by the implementations here.
pub trait TraceSink {
    /// Receive one record.
    fn emit(&mut self, rec: &Record);
    /// Flush any buffered output (called when the recorder is torn down).
    fn flush(&mut self) {}
}

/// Streams records as JSONL to any [`std::io::Write`] (a file, a pipe, a
/// `Vec<u8>` in tests).
pub struct JsonlSink<W: std::io::Write> {
    out: std::io::BufWriter<W>,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        Self {
            out: std::io::BufWriter::new(out),
        }
    }
}

impl<W: std::io::Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, rec: &Record) {
        use std::io::Write;
        let _ = writeln!(self.out, "{}", rec.to_jsonl());
    }

    fn flush(&mut self) {
        use std::io::Write;
        let _ = self.out.flush();
    }
}

/// Forwards records over an mpsc channel — the in-memory sink for tests
/// that want to observe the full stream without touching the ring buffer.
pub struct ChannelSink(pub std::sync::mpsc::Sender<Record>);

impl TraceSink for ChannelSink {
    fn emit(&mut self, rec: &Record) {
        let _ = self.0.send(*rec);
    }
}

// ---------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------

/// Bounded ring-buffer recorder with an optional forwarding sink and the
/// packet/link forensics queries.
pub struct TraceRecorder {
    pub(crate) capacity: usize,
    pub(crate) buf: VecDeque<Record>,
    pub(crate) emitted: u64,
    pub(crate) dropped: u64,
    pub(crate) sink: Option<Box<dyn TraceSink>>,
}

impl TraceRecorder {
    /// A recorder with the configured ring capacity and no sink.
    pub fn new(cfg: TraceConfig) -> Self {
        Self {
            capacity: cfg.capacity.max(1),
            buf: VecDeque::with_capacity(cfg.capacity.clamp(1, 4096)),
            emitted: 0,
            dropped: 0,
            sink: None,
        }
    }

    /// Record one event: forward to the sink, then ring-buffer it
    /// (evicting the oldest record when full).
    pub fn record(&mut self, cycle: u64, kind: TraceKind) {
        let rec = Record { cycle, kind };
        self.emitted += 1;
        if let Some(sink) = self.sink.as_mut() {
            sink.emit(&rec);
        }
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec);
    }

    /// Attach (or replace) the forwarding sink.
    pub fn set_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Flush and drop the sink, if any.
    pub fn close_sink(&mut self) {
        if let Some(mut sink) = self.sink.take() {
            sink.flush();
        }
    }

    /// Records currently held (oldest first).
    pub fn records(&self) -> impl Iterator<Item = &Record> {
        self.buf.iter()
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total records emitted over the recorder's lifetime.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Records evicted from the ring to make room for newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Take all buffered records (oldest first), leaving the ring empty.
    pub fn take_records(&mut self) -> Vec<Record> {
        self.buf.drain(..).collect()
    }

    /// Every buffered record naming `packet`, in order — a packet's full
    /// journey: inject → launches (with faults/NACKs/L-Ob between) →
    /// ejection or quarantine drop.
    pub fn packet_history(&self, packet: PacketId) -> Vec<Record> {
        self.buf
            .iter()
            .filter(|r| r.packet() == Some(packet))
            .copied()
            .collect()
    }

    /// Every buffered record naming `link`, in order — the fault / retx /
    /// classification / obfuscation sequence the paper's threat detector
    /// reasons over.
    pub fn link_timeline(&self, link: LinkId) -> Vec<Record> {
        self.buf
            .iter()
            .filter(|r| r.link() == Some(link))
            .copied()
            .collect()
    }

    /// Serialise the buffered records as JSONL (one record per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.buf {
            out.push_str(&r.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Serialise the buffered records in Chrome `trace_event` format.
    pub fn to_chrome_trace(&self) -> String {
        chrome_trace(self.buf.iter())
    }
}

/// Render records in the Chrome `trace_event` JSON format (open the
/// output in `chrome://tracing` or <https://ui.perfetto.dev>). Links and
/// routers are presented as two "processes" with one "thread" per link /
/// per router; one cycle maps to one microsecond of trace time.
pub fn chrome_trace<'a>(records: impl Iterator<Item = &'a Record>) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"links\"}},",
    );
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
         \"args\":{\"name\":\"routers\"}}",
    );
    for r in records {
        let (pid, tid) = match (r.link(), r.kind) {
            (Some(l), _) => (1, l.0 as u64),
            (None, TraceKind::FlitEjected { router, .. }) => (2, router.0 as u64),
            (None, TraceKind::FlitInjected { core, .. }) => (2, (core / 4) as u64),
            _ => (2, 0),
        };
        let _ = write!(
            out,
            ",{{\"name\":\"{}\",\"cat\":\"noc\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\
             \"pid\":{pid},\"tid\":{tid},\"args\":{{",
            r.kind.label(),
            r.cycle
        );
        if let Some(p) = r.packet() {
            let _ = write!(out, "\"packet\":{}", p.0);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_mitigation::{Granularity, ObfuscationMethod};

    #[test]
    fn ring_buffer_evicts_oldest_and_counts() {
        let mut rec = TraceRecorder::new(TraceConfig { capacity: 3 });
        for c in 0..5 {
            rec.record(
                c,
                TraceKind::BistScan {
                    link: LinkId(0),
                    passed: true,
                },
            );
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.emitted(), 5);
        assert_eq!(rec.dropped(), 2);
        let cycles: Vec<u64> = rec.records().map(|r| r.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "newest records survive");
    }

    #[test]
    fn sink_sees_records_the_ring_evicts() {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut rec = TraceRecorder::new(TraceConfig { capacity: 1 });
        rec.set_sink(Box::new(ChannelSink(tx)));
        for c in 0..4 {
            rec.record(
                c,
                TraceKind::BistScan {
                    link: LinkId(7),
                    passed: false,
                },
            );
        }
        rec.close_sink();
        assert_eq!(rx.iter().count(), 4, "the sink saw the full stream");
        assert_eq!(rec.len(), 1);
    }

    #[test]
    fn forensics_queries_filter_by_packet_and_link() {
        let mut rec = TraceRecorder::new(TraceConfig::default());
        rec.record(
            1,
            TraceKind::FlitInjected {
                flit: FlitId(1),
                packet: PacketId(9),
                core: 0,
            },
        );
        rec.record(
            2,
            TraceKind::FlitLaunched {
                flit: FlitId(1),
                packet: PacketId(9),
                link: LinkId(4),
                attempt: 1,
                obf: None,
            },
        );
        rec.record(
            3,
            TraceKind::BistScan {
                link: LinkId(4),
                passed: true,
            },
        );
        assert_eq!(rec.packet_history(PacketId(9)).len(), 2);
        assert_eq!(rec.packet_history(PacketId(8)).len(), 0);
        assert_eq!(rec.link_timeline(LinkId(4)).len(), 2);
    }

    #[test]
    fn jsonl_round_trips_a_plan_bearing_launch() {
        let rec = Record {
            cycle: 77,
            kind: TraceKind::FlitLaunched {
                flit: FlitId(3),
                packet: PacketId(1),
                link: LinkId(12),
                attempt: 4,
                obf: Some(LobPlan {
                    method: ObfuscationMethod::Rotate(13),
                    granularity: Granularity::Header,
                }),
            },
        };
        let line = rec.to_jsonl();
        assert_eq!(Record::from_jsonl(&line), Some(rec));
        assert!(line.contains("\"obf\":\"rotate13:header\""), "{line}");
    }

    #[test]
    fn alert_records_round_trip_jsonl() {
        let rec = Record {
            cycle: 1400,
            kind: TraceKind::Alert {
                class: crate::telemetry::AlertClass::RetxSurge,
                value: 512,
                threshold: 96,
            },
        };
        let line = rec.to_jsonl();
        assert_eq!(Record::from_jsonl(&line), Some(rec));
        assert!(line.contains("\"event\":\"alert\""), "{line}");
        assert!(line.contains("\"class\":\"retx_surge\""), "{line}");
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in [
            "",
            "{}",
            "not json",
            "{\"cycle\":1}",
            "{\"cycle\":1,\"event\":\"no_such_event\"}",
            "{\"cycle\":1,\"event\":\"bist_scan\",\"link\":2}", // missing field
        ] {
            assert_eq!(Record::from_jsonl(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn chrome_trace_is_balanced_json() {
        let recs = [
            Record {
                cycle: 0,
                kind: TraceKind::FlitInjected {
                    flit: FlitId(0),
                    packet: PacketId(0),
                    core: 5,
                },
            },
            Record {
                cycle: 1,
                kind: TraceKind::BistScan {
                    link: LinkId(3),
                    passed: true,
                },
            },
        ];
        let s = chrome_trace(recs.iter());
        assert!(s.starts_with('{') && s.ends_with('}'));
        let depth = s.chars().fold(0i32, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
        assert!(s.contains("\"tid\":3"));
    }
}
