//! Per-link and per-router metrics registry.
//!
//! Replaces the old ad-hoc `SimStats::link_flits` vector with a typed
//! registry of counters, gauges, and power-of-two histograms that is
//! always on (plain integer increments, no allocation on the hot path)
//! and cheap enough to leave enabled in every run. The registry feeds
//! the heatmap/table renderers in `htnoc-core::viz` and the per-link
//! tables the campaign and figure binaries print.

use noc_types::{LinkId, NodeId};

/// Monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub(crate) u64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Sampled instantaneous value with a high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    /// Most recently observed value.
    pub current: u64,
    /// Largest value ever observed.
    pub high_water: u64,
}

impl Gauge {
    /// Record a sample.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.current = v;
        self.high_water = self.high_water.max(v);
    }
}

/// Histogram with power-of-two buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))`, with 0 and 1 both landing in bucket 0 (mirrors
/// `SimStats`' latency binning).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PowHistogram {
    pub(crate) buckets: [u64; 16],
    pub(crate) count: u64,
    pub(crate) max: u64,
}

impl PowHistogram {
    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.max(1).leading_zeros() - 1).min(15) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample recorded.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; 16] {
        &self.buckets
    }
}

/// Everything measured about one unidirectional link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkMetrics {
    /// Flits driven onto the wire (including retransmissions).
    pub flits: Counter,
    /// Retransmitted launches (launch attempts beyond the first).
    pub retransmissions: Counter,
    /// SECDED single-bit corrections at the downstream decoder.
    pub ecc_corrected: Counter,
    /// SECDED uncorrectable detections at the downstream decoder.
    pub ecc_uncorrectable: Counter,
    /// NACKs returned by the downstream input unit.
    pub nacks: Counter,
    /// BIST scans run on this link.
    pub bist_scans: Counter,
    /// L-Ob plans selected for replays crossing this link.
    pub lob_selections: Counter,
    /// Launch attempts each acknowledged flit needed (1 = clean).
    pub delivery_attempts: PowHistogram,
}

impl LinkMetrics {
    /// Fraction of `elapsed` cycles this link spent carrying a flit.
    pub fn utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.flits.get() as f64 / elapsed as f64
        }
    }
}

/// Everything measured about one router.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterMetrics {
    /// Flits ejected to this router's local cores.
    pub ejected_flits: Counter,
    /// Cycles a core had a flit waiting but no VC could admit it.
    pub injection_stalls: Counter,
    /// Sampled total network-input buffer occupancy (flits).
    pub input_occupancy: Gauge,
    /// Sampled retransmission-buffer occupancy across output ports.
    pub retx_occupancy: Gauge,
    /// Deepest any single input unit has ever been (flits).
    pub buffer_high_water: u64,
}

/// The per-link / per-router metrics registry, sized to the mesh at
/// simulator construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    pub(crate) links: Vec<LinkMetrics>,
    pub(crate) routers: Vec<RouterMetrics>,
}

impl MetricsRegistry {
    /// A registry for `n_links` links and `n_routers` routers.
    pub fn new(n_links: usize, n_routers: usize) -> Self {
        Self {
            links: vec![LinkMetrics::default(); n_links],
            routers: vec![RouterMetrics::default(); n_routers],
        }
    }

    /// Mutable slice over all link metrics, for the sharded cycle
    /// engine's disjoint per-shard access (`crate::par`).
    pub(crate) fn link_slice_mut(&mut self) -> &mut [LinkMetrics] {
        &mut self.links
    }

    /// Metrics for one link.
    pub fn link(&self, id: LinkId) -> &LinkMetrics {
        &self.links[id.index()]
    }

    /// Mutable metrics for one link.
    pub fn link_mut(&mut self, id: LinkId) -> &mut LinkMetrics {
        &mut self.links[id.index()]
    }

    /// Metrics for one router.
    pub fn router(&self, id: NodeId) -> &RouterMetrics {
        &self.routers[id.index()]
    }

    /// Mutable metrics for one router.
    pub fn router_mut(&mut self, id: NodeId) -> &mut RouterMetrics {
        &mut self.routers[id.index()]
    }

    /// All link metrics, indexed by link id.
    pub fn links(&self) -> &[LinkMetrics] {
        &self.links
    }

    /// All router metrics, indexed by node id.
    pub fn routers(&self) -> &[RouterMetrics] {
        &self.routers
    }

    /// Per-link flit counts (the shape the old `SimStats::link_flits`
    /// vector had), for the viz link-heatmap renderer.
    pub fn link_flits(&self) -> Vec<u64> {
        self.links.iter().map(|l| l.flits.get()).collect()
    }

    /// The link with the most retransmissions — under a single-trojan
    /// flood, the infected link.
    pub fn max_retx_link(&self) -> Option<(LinkId, u64)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkId(i as u16), l.retransmissions.get()))
            .max_by_key(|&(_, n)| n)
    }

    /// Render the per-link metrics as CSV (`elapsed` scales utilization).
    pub fn links_csv(&self, elapsed: u64) -> String {
        use std::fmt::Write;
        let mut out =
            String::from("link,flits,util,retx,ecc_corrected,ecc_uncorrectable,nacks,bist_scans,lob_selections,max_attempts\n");
        for (i, l) in self.links.iter().enumerate() {
            let _ = writeln!(
                out,
                "{i},{},{:.4},{},{},{},{},{},{},{}",
                l.flits.get(),
                l.utilization(elapsed),
                l.retransmissions.get(),
                l.ecc_corrected.get(),
                l.ecc_uncorrectable.get(),
                l.nacks.get(),
                l.bist_scans.get(),
                l.lob_selections.get(),
                l.delivery_attempts.max(),
            );
        }
        out
    }

    /// Render the per-router metrics as CSV.
    pub fn routers_csv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from(
            "router,ejected_flits,injection_stalls,input_occupancy_hwm,retx_occupancy_hwm,buffer_hwm\n",
        );
        for (i, r) in self.routers.iter().enumerate() {
            let _ = writeln!(
                out,
                "{i},{},{},{},{},{}",
                r.ejected_flits.get(),
                r.injection_stalls.get(),
                r.input_occupancy.high_water,
                r.retx_occupancy.high_water,
                r.buffer_high_water,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::default();
        g.observe(7);
        g.observe(3);
        assert_eq!(g.current, 3);
        assert_eq!(g.high_water, 7);
    }

    #[test]
    fn pow_histogram_buckets_by_power_of_two() {
        let mut h = PowHistogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.buckets()[0], 2, "0 and 1 share bucket 0");
        assert_eq!(h.buckets()[1], 2, "2 and 3 in [2,4)");
        assert_eq!(h.buckets()[2], 1);
        assert_eq!(h.buckets()[9], 1, "1000 in [512,1024)");
    }

    #[test]
    fn max_retx_link_picks_the_hottest_link() {
        let mut m = MetricsRegistry::new(4, 2);
        m.link_mut(LinkId(2)).retransmissions.add(9);
        m.link_mut(LinkId(1)).retransmissions.add(3);
        assert_eq!(m.max_retx_link(), Some((LinkId(2), 9)));
    }

    #[test]
    fn csv_renders_one_row_per_entity() {
        let mut m = MetricsRegistry::new(3, 2);
        m.link_mut(LinkId(0)).flits.add(10);
        let links = m.links_csv(100);
        assert_eq!(links.lines().count(), 4, "header + 3 links");
        assert!(links.lines().nth(1).unwrap().starts_with("0,10,0.1000"));
        assert_eq!(m.routers_csv().lines().count(), 3, "header + 2 routers");
    }
}
