//! Deterministic sharded parallel execution engine.
//!
//! The cycle loop's first seven phases are reorganised into three
//! *barrier-separated groups*, each of which partitions the network state
//! so that every shard touches a disjoint slice:
//!
//! | group | work                                   | partition key        |
//! |-------|----------------------------------------|----------------------|
//! | G1    | active-set refresh, link delivery (P1),| routers by index,    |
//! |       | hold resolution (P2)                   | links by *dest*      |
//! | G2    | ACK/credit drain (P3), launch (P4)     | links by *source*    |
//! | G3    | ST (P5), SA + credit return (P6),      | routers by index     |
//! |       | VA/RC (P7)                             | (P6 pushes into the  |
//! |       |                                        | links feeding them,  |
//! |       |                                        | i.e. links by dest)  |
//!
//! Injection (P8), snapshotting, and quarantine stay sequential on the
//! caller's thread, as does the *commit* step that folds per-shard side
//! effects back into the global simulator in exactly the order the
//! sequential engine would have produced them (see [`ShardFx`]).
//!
//! Why the partition is race-free:
//!
//! * The forward wire of a link is written by its source router's shard
//!   (P4 launch, group G2) and read by its destination router's shard
//!   (P1 delivery, group G1) — different groups, never concurrent.
//! * The reverse queues (ACKs, credits) are pushed by the destination
//!   shard (P1 in G1, P6 in G3) and drained by the source shard (P3 in
//!   G2). The one-cycle link latencies time-partition pushes (timestamped
//!   `now + 1`) from drains (`<= now`), and the groups barrier-partition
//!   the queue memory itself.
//! * All other state (input units, crossbar, output units, per-link RNG
//!   in the fault layer) is only ever touched through the owning shard's
//!   partition in any given group.
//!
//! Determinism: every shard processes its links/routers in ascending id
//! order, per-link RNG streams are owned by exactly one shard per group,
//! and the commit step performs an id-keyed k-way merge of the per-shard
//! effect lists — reconstructing the exact sequential order of every
//! event, trace record, and statistics update. The result is bit-identical
//! to the sequential engine at every shard count (verified by the golden
//! determinism suite and the differential conformance fuzzer). This
//! includes the [`crate::config::Sabotage::LeakCredit`] self-test hook:
//! its counter lives on the [`crate::output::OutputUnit`] it leaks from,
//! and each output's credits drain in wire order under exactly one shard,
//! so the count is identical at every shard count.
//!
//! Scheduling: each phase walks the raised bits of a hierarchical
//! active set ([`crate::activeset::ActiveSet`]) restricted to its
//! shard's router band or link-position range instead of scanning every
//! id. Link bitmaps are indexed by partition *position* (see
//! [`LinkOrders`]) so a shard's links occupy one dense range; ascending
//! position within a shard is ascending link id, preserving the
//! sequential iteration order. Bits are superset hints — every consumer
//! re-checks the authoritative predicate, so a stale bit costs one
//! check and can never change simulated state.

use crate::activeset::ActiveSet;
use crate::config::{Sabotage, SimConfig};
use crate::input::{DelayedEntry, PendingScramble};
use crate::link::LanesView;
use crate::message::{AckKind, AckMsg, LinkFlit, SimEvent, TraceEvent, TraceOutcome};
use crate::metrics::LinkMetrics;
use crate::router::{CreditReturn, Ejection, Router};
use crate::routing::Routing;
use crate::trace::TraceKind;
use noc_ecc::{Decode, Secded};
use noc_mitigation::{Bist, DetectorAction};
use noc_types::{Direction, Flit, LinkId, Mesh, NodeId, Port, VcId};
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::{Arc, Barrier};

/// Hard ceiling on shard count: bounds the stack-allocated cursor arrays
/// used by the zero-allocation k-way merges in the commit step.
pub(crate) const MAX_SHARDS: usize = 64;

// ---------------------------------------------------------------------
// Disjoint mutable access
// ---------------------------------------------------------------------

/// A shareable view of a mutable slice whose elements are mutated through
/// `&self`. Soundness rests on the shard partition invariant: between two
/// barriers, each element index is accessed by **at most one** thread
/// (the shard that owns it under the active group's partition). The
/// planner ([`plan_shards`]) constructs disjoint ownership sets, and the
/// phase bodies only index through their own [`ShardPlan`].
pub(crate) struct DisjointMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for DisjointMut<'_, T> {}
unsafe impl<T: Send> Sync for DisjointMut<'_, T> {}

impl<'a, T> DisjointMut<'a, T> {
    pub(crate) fn new(slice: &'a mut [T]) -> Self {
        Self {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Mutable reference to element `i`. Callers must uphold the
    /// partition invariant above; indexing an element owned by another
    /// shard in the same group is undefined behaviour.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub(crate) fn idx(&self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        unsafe { &mut *self.ptr.add(i) }
    }
}

// ---------------------------------------------------------------------
// Shard planning
// ---------------------------------------------------------------------

/// One shard's ownership sets: a contiguous band of routers (on a `k×k`
/// mesh with `s | k` shards this is exactly a row band), plus the links
/// partitioned by destination (used in G1/G3) and by source (G2). Both
/// link lists are ascending, which the commit merge relies on.
///
/// `dst_range` / `src_range` are this shard's contiguous slots in the
/// shard-ordered link *position* spaces (see [`link_orders`]): the
/// active-set bitmaps over links are indexed by position so each shard
/// iterates one dense range instead of a scattered id list.
#[derive(Debug, Clone)]
pub(crate) struct ShardPlan {
    pub routers: Range<usize>,
    pub links_dst: Vec<u16>,
    pub links_src: Vec<u16>,
    pub dst_range: Range<usize>,
    pub src_range: Range<usize>,
}

/// Split the mesh into at most `shards` contiguous router bands (never
/// more than one shard per router, never more than [`MAX_SHARDS`]).
pub(crate) fn plan_shards(mesh: &Mesh, shards: usize) -> Vec<ShardPlan> {
    let n = mesh.routers();
    let s = shards.clamp(1, MAX_SHARDS).min(n.max(1));
    let (base, extra) = (n / s, n % s);
    let mut plans = Vec::with_capacity(s);
    let mut start = 0usize;
    let (mut dst_off, mut src_off) = (0usize, 0usize);
    for i in 0..s {
        let len = base + usize::from(i < extra);
        let routers = start..start + len;
        start += len;
        let links_dst: Vec<u16> = mesh
            .all_links()
            .filter(|&l| routers.contains(&mesh.link_dest(l).index()))
            .map(|l| l.0)
            .collect();
        let links_src: Vec<u16> = mesh
            .all_links()
            .filter(|&l| routers.contains(&mesh.link_source(l).0.index()))
            .map(|l| l.0)
            .collect();
        let dst_range = dst_off..dst_off + links_dst.len();
        let src_range = src_off..src_off + links_src.len();
        dst_off = dst_range.end;
        src_off = src_range.end;
        plans.push(ShardPlan {
            routers,
            links_dst,
            links_src,
            dst_range,
            src_range,
        });
    }
    plans
}

/// The bijections between link ids and their *positions* in the two
/// shard-ordered partitions. Position spaces concatenate the shards'
/// ascending link lists, so each shard's links occupy one contiguous
/// position range ([`ShardPlan::dst_range`] / [`ShardPlan::src_range`])
/// and ascending position within a shard is ascending link id — the
/// order every phase loop and the commit merge rely on.
pub(crate) struct LinkOrders {
    /// Link id → position in the by-destination partition.
    pub dst_pos: Vec<u16>,
    /// Position in the by-destination partition → link id.
    pub dst_order: Vec<u16>,
    /// Link id → position in the by-source partition.
    pub src_pos: Vec<u16>,
    /// Position in the by-source partition → link id.
    pub src_order: Vec<u16>,
}

pub(crate) fn link_orders(plans: &[ShardPlan], n_links: usize) -> LinkOrders {
    let mut o = LinkOrders {
        dst_pos: vec![0; n_links],
        dst_order: vec![0; n_links],
        src_pos: vec![0; n_links],
        src_order: vec![0; n_links],
    };
    let mut pos = 0u16;
    for p in plans {
        for &li in &p.links_dst {
            o.dst_pos[li as usize] = pos;
            o.dst_order[pos as usize] = li;
            pos += 1;
        }
    }
    let mut pos = 0u16;
    for p in plans {
        for &li in &p.links_src {
            o.src_pos[li as usize] = pos;
            o.src_order[pos as usize] = li;
            pos += 1;
        }
    }
    o
}

// ---------------------------------------------------------------------
// Per-shard state: scratch buffers and buffered side effects
// ---------------------------------------------------------------------

/// Deltas to the global [`crate::stats::SimStats`] counters accumulated
/// by one shard during one cycle; summed into the real counters at
/// commit (addition commutes, so no ordering is needed).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct StatsDelta {
    pub corrected_faults: u64,
    pub uncorrectable_faults: u64,
    pub bist_scans: u64,
    pub retransmissions: u64,
    pub budget_escalations: u64,
}

/// One shard's working state: the reusable scratch buffers (moved here
/// from the sequential simulator so each worker owns its own set) and
/// the per-cycle side-effect lists.
///
/// Effect lists are keyed by the id of the link (P1/P3/P4) or router
/// (P5) that produced them. Within a shard each list is naturally
/// ascending (phases iterate ids in order), and ids are disjoint across
/// shards, so an id-keyed merge at commit reproduces the exact global
/// order the sequential engine emits.
#[derive(Debug, Default)]
pub(crate) struct ShardFx {
    // Reusable scratch (capacity retained across cycles).
    pub ready: Vec<(VcId, Flit)>,
    pub acks: Vec<AckMsg>,
    pub credit_vcs: Vec<VcId>,
    pub ejections: Vec<Ejection>,
    pub credits: Vec<CreditReturn>,
    /// P1 batching scratch: this cycle's arrivals, dense, ascending link
    /// id, collected before the fault-traversal + SECDED decode pass.
    pub p1_arrivals: Vec<(u16, LinkFlit)>,
    /// P1 batching scratch: decode verdicts, parallel to `p1_arrivals`.
    pub p1_decodes: Vec<Decode>,
    // Per-cycle buffered effects, drained by `Simulator::commit_fx`.
    pub stats: StatsDelta,
    pub progress: bool,
    pub p1_kinds: Vec<(u16, TraceKind)>,
    pub p1_events: Vec<(u16, SimEvent)>,
    pub p1_trace: Vec<(u16, TraceEvent)>,
    pub p3_kinds: Vec<(u16, TraceKind)>,
    pub p3_events: Vec<(u16, SimEvent)>,
    pub p3_quar: Vec<u16>,
    pub p4_kinds: Vec<(u16, TraceKind)>,
    pub p4_trace: Vec<(u16, TraceEvent)>,
    pub p5_ejections: Vec<(u16, Ejection)>,
    // Telemetry scratch, drained by `Telemetry::absorb_cycle` at commit.
    // Strictly side-band: written only when `PhaseCtx::telemetry` is set
    // and never read by any phase.
    /// Nanoseconds this shard spent per phase this cycle.
    pub tel_phase_ns: [u64; crate::telemetry::PHASE_COUNT],
    /// Timeline spans per barrier group this cycle: (start ns since the
    /// telemetry epoch, duration ns); (0, 0) when not sampled.
    pub tel_group_spans: [(u64, u64); crate::telemetry::GROUP_COUNT],
    /// Launch attempts of flits acknowledged this cycle (sketch feed).
    pub tel_retx_attempts: Vec<u64>,
}

/// Merge the `sel`-selected effect lists of all shards in ascending key
/// order and feed each item to `apply`, then clear the lists. Keys are
/// disjoint across shards (each id has one owner per group) and
/// ascending within a shard, so a repeated-minimum scan reconstructs the
/// sequential emission order exactly. Allocation-free: the cursor array
/// lives on the stack (hence [`MAX_SHARDS`]).
pub(crate) fn merge_keyed<T: Clone>(
    fxs: &mut [ShardFx],
    sel: fn(&mut ShardFx) -> &mut Vec<(u16, T)>,
    mut apply: impl FnMut(T),
) {
    if fxs.len() == 1 {
        for (_, item) in sel(&mut fxs[0]).drain(..) {
            apply(item);
        }
        return;
    }
    let mut pos = [0usize; MAX_SHARDS];
    loop {
        let mut best = usize::MAX;
        let mut best_key = u16::MAX;
        for s in 0..fxs.len() {
            let v = sel(&mut fxs[s]);
            if pos[s] < v.len() {
                let k = v[pos[s]].0;
                if best == usize::MAX || k < best_key {
                    best = s;
                    best_key = k;
                }
            }
        }
        if best == usize::MAX {
            break;
        }
        let item = sel(&mut fxs[best])[pos[best]].1.clone();
        pos[best] += 1;
        apply(item);
    }
    for f in fxs.iter_mut() {
        sel(f).clear();
    }
}

// ---------------------------------------------------------------------
// Shared phase context
// ---------------------------------------------------------------------

/// Everything a phase body needs, shareable across worker threads. The
/// mutable network state is exposed through [`DisjointMut`] views; the
/// configuration and geometry are plain shared references.
pub(crate) struct PhaseCtx<'a> {
    pub cfg: &'a SimConfig,
    pub mesh: &'a Mesh,
    pub routing: &'a Routing,
    /// Version counter for `routing` (RC memo invalidation).
    pub routing_epoch: u32,
    pub dead_links: &'a [LinkId],
    pub link_dead: &'a [bool],
    pub routers: DisjointMut<'a, Router>,
    pub links: LanesView<'a>,
    pub link_metrics: DisjointMut<'a, LinkMetrics>,
    pub router_active: DisjointMut<'a, bool>,
    /// Hierarchical active sets (superset hints — every consumer
    /// re-checks the authoritative predicate; see [`crate::activeset`]).
    /// `router_set` mirrors `router_active`; the link sets are indexed
    /// by partition *position* via the maps below.
    pub router_set: &'a ActiveSet,
    pub fwd_set: &'a ActiveSet,
    pub rev_set: &'a ActiveSet,
    pub launch_set: &'a ActiveSet,
    pub dst_pos: &'a [u16],
    pub dst_order: &'a [u16],
    pub src_pos: &'a [u16],
    pub src_order: &'a [u16],
    /// Whether the structured tracer is armed (`cfg.trace`): gates every
    /// `p*_kinds` push so the disabled path stays zero-cost.
    pub tracing: bool,
    /// Whether the telemetry plane is armed: gates the deterministic
    /// sketch feeds (e.g. retransmission-attempt counts).
    pub telemetry: bool,
    /// Whether this cycle's scoped phase timers run (sampled every
    /// `profile_every` cycles; implies `telemetry`).
    pub profile: bool,
    /// Whether this cycle's engine timeline is being sampled (implies
    /// `profile`).
    pub timeline: bool,
    /// Wall-clock origin for engine-timeline offsets.
    pub epoch: std::time::Instant,
}

/// The three barrier-separated phase groups (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Group {
    G1,
    G2,
    G3,
}

/// Run one phase group for one shard. Called by the owning worker (or
/// the caller's thread for shard 0 / the single-shard path).
pub(crate) fn run_group(
    ctx: &PhaseCtx<'_>,
    plan: &ShardPlan,
    fx: &mut ShardFx,
    g: Group,
    now: u64,
) {
    if ctx.profile {
        run_group_timed(ctx, plan, fx, g, now);
        return;
    }
    match g {
        Group::G1 => {
            // Refresh the active set for the owned band: a router with no
            // buffered, held, or crossbar-pending flit skips phases
            // 2/5/6/7. Arrivals below flip bits back on eagerly; they can
            // only target routers in this same band (links_dst ⊆ band).
            // Only bitmap-raised routers can have gained work since they
            // last went idle (every activation site sets the bit), so the
            // scan walks set bits instead of the whole band; a clear bit
            // implies the bool is already false, so skipping the write
            // leaves `router_active` exactly as the linear scan would.
            refresh_active(ctx, plan);
            phase_link_delivery(ctx, plan, fx, now);
            phase_resolve_holds(ctx, plan, fx, now);
        }
        Group::G2 => {
            phase_acks_and_credits(ctx, plan, fx, now);
            phase_launch(ctx, plan, fx, now);
        }
        Group::G3 => {
            phase_st(ctx, plan, fx, now);
            phase_sa(ctx, plan, fx, now);
            phase_va_rc(ctx, plan, now);
        }
    }
}

/// The telemetry-armed variant of [`run_group`]: the identical phase
/// calls wrapped in scoped timers. Timings land only in the shard's
/// side-band scratch; no phase reads them, so arming telemetry cannot
/// change simulated state. The G1 timer for `link_delivery` also covers
/// the active-set refresh that precedes it.
fn run_group_timed(ctx: &PhaseCtx<'_>, plan: &ShardPlan, fx: &mut ShardFx, g: Group, now: u64) {
    use std::time::Instant;
    let g0 = Instant::now();
    let gi = match g {
        Group::G1 => {
            refresh_active(ctx, plan);
            phase_link_delivery(ctx, plan, fx, now);
            let t1 = Instant::now();
            fx.tel_phase_ns[0] += t1.duration_since(g0).as_nanos() as u64;
            phase_resolve_holds(ctx, plan, fx, now);
            fx.tel_phase_ns[1] += t1.elapsed().as_nanos() as u64;
            0
        }
        Group::G2 => {
            phase_acks_and_credits(ctx, plan, fx, now);
            let t1 = Instant::now();
            fx.tel_phase_ns[2] += t1.duration_since(g0).as_nanos() as u64;
            phase_launch(ctx, plan, fx, now);
            fx.tel_phase_ns[3] += t1.elapsed().as_nanos() as u64;
            1
        }
        Group::G3 => {
            phase_st(ctx, plan, fx, now);
            let t1 = Instant::now();
            fx.tel_phase_ns[4] += t1.duration_since(g0).as_nanos() as u64;
            phase_sa(ctx, plan, fx, now);
            let t2 = Instant::now();
            fx.tel_phase_ns[5] += t2.duration_since(t1).as_nanos() as u64;
            phase_va_rc(ctx, plan, now);
            fx.tel_phase_ns[6] += t2.elapsed().as_nanos() as u64;
            2
        }
    };
    if ctx.timeline {
        let start_ns = g0.duration_since(ctx.epoch).as_nanos() as u64;
        let dur_ns = (g0.elapsed().as_nanos() as u64).max(1);
        fx.tel_group_spans[gi] = (start_ns, dur_ns);
    }
}

/// The G1 active-set refresh for one shard's band (see [`run_group`]).
fn refresh_active(ctx: &PhaseCtx<'_>, plan: &ShardPlan) {
    ctx.router_set.for_each_set_in(plan.routers.clone(), |r| {
        let w = ctx.routers.idx(r).has_phase_work();
        *ctx.router_active.idx(r) = w;
        if !w {
            ctx.router_set.clear(r);
        }
    });
}

// Phase 1: flits completing link traversal are decoded and judged. Three
// passes over the shard's raised forward-wire bits so the fault layer and
// the SECDED kernel batch over a dense arrival list: (1) collect arrivals
// off the wires (clearing each bit — a taken wire is empty, and `LT_CYCLES
// == 1` means a raised bit is always due), (2) fault traversal + decode in
// a tight loop over the dense list, (3) detector/buffer handling in the
// same ascending link order the sequential engine uses.
fn phase_link_delivery(ctx: &PhaseCtx<'_>, plan: &ShardPlan, fx: &mut ShardFx, now: u64) {
    let mut arrivals = std::mem::take(&mut fx.p1_arrivals);
    let mut decodes = std::mem::take(&mut fx.p1_decodes);
    arrivals.clear();
    decodes.clear();
    ctx.fwd_set.for_each_set_in(plan.dst_range.clone(), |pos| {
        ctx.fwd_set.clear(pos);
        let li16 = ctx.dst_order[pos];
        if let Some(lf) = ctx.links.take_arrival(li16 as usize, now) {
            arrivals.push((li16, lf));
        }
    });
    for (li16, lf) in arrivals.iter_mut() {
        *lf = ctx.links.traverse(*li16 as usize, now, *lf);
        decodes.push(Secded::decode(lf.codeword));
    }
    for (&(li16, lf), &decode) in arrivals.iter().zip(decodes.iter()) {
        let link = LinkId(li16);
        let (_, dir) = ctx.mesh.link_source(link);
        let dst = ctx.mesh.link_dest(link);
        let in_port = Port::Net(dir.opposite());
        handle_arrival(ctx, fx, now, link, dst, in_port, lf, decode);
    }
    fx.p1_arrivals = arrivals;
    fx.p1_decodes = decodes;
}

#[allow(clippy::too_many_arguments)]
fn handle_arrival(
    ctx: &PhaseCtx<'_>,
    fx: &mut ShardFx,
    now: u64,
    link: LinkId,
    dst: NodeId,
    in_port: Port,
    lf: LinkFlit,
    decode: Decode,
) {
    // Whatever happens below (buffer write, delayed hold, pending
    // scramble), the destination router now has phase work.
    *ctx.router_active.idx(dst.index()) = true;
    ctx.router_set.set(dst.index());
    let li = link.index();
    match decode {
        Decode::Corrected { .. } => {
            fx.stats.corrected_faults += 1;
            ctx.link_metrics.idx(li).ecc_corrected.inc();
            if ctx.tracing {
                fx.p1_kinds.push((
                    link.0,
                    TraceKind::EccCorrected {
                        flit: lf.flit.id,
                        packet: lf.flit.packet,
                        link,
                    },
                ));
            }
        }
        Decode::Uncorrectable { .. } => {
            fx.stats.uncorrectable_faults += 1;
            ctx.link_metrics.idx(li).ecc_uncorrectable.inc();
            if ctx.tracing {
                fx.p1_kinds.push((
                    link.0,
                    TraceKind::EccDetected {
                        flit: lf.flit.id,
                        packet: lf.flit.packet,
                        link,
                    },
                ));
            }
        }
        Decode::Clean { .. } => {}
    }
    let key = (lf.flit.packet, lf.flit.seq);
    let obf_info = lf.obf.map(|o| (o.attempt, o.plan.method.undo_penalty()));
    let mitigation = ctx.cfg.mitigation;
    let traced = ctx.cfg.trace_packet == Some(lf.flit.packet);
    let unit = &mut ctx.routers.idx(dst.index()).inputs[in_port.index()];
    let verdict = unit.detector.on_flit(key, &decode, obf_info);

    let mut accepted = matches!(
        verdict.action,
        DetectorAction::Accept | DetectorAction::AcceptObfuscated { .. }
    );
    // Receiver-side go-back-N ordering: an accepted flit must be the
    // next expected one on its VC, else it is NACKed despite decoding
    // cleanly (the upstream will replay in order).
    if accepted && !wire_in_order(unit, &lf) {
        accepted = false;
    }

    if accepted {
        wire_advance(unit, &lf);
        unit.remember_word(lf.flit.id, lf.flit.word);
        let order = unit.take_order();
        match verdict.action {
            DetectorAction::AcceptObfuscated { penalty } => {
                let obf = lf.obf.expect("obfuscated accept implies metadata");
                if let Some(partner) = obf.partner {
                    unit.pending_scrambles.push(PendingScramble {
                        flit: lf.flit,
                        vc: lf.vc,
                        partner,
                        arrived: now,
                        penalty,
                        order,
                    });
                } else {
                    unit.delayed.push(DelayedEntry {
                        ready: now + penalty as u64,
                        vc: lf.vc,
                        flit: lf.flit,
                        order,
                    });
                }
                fx.p1_events.push((
                    link.0,
                    SimEvent::ObfuscationSucceeded {
                        link,
                        plan: obf.plan,
                        cycle: now,
                    },
                ));
            }
            _ => {
                // Preserve order behind any same-VC flits still paying
                // an obfuscation stall: queue behind them (the release
                // logic in `take_ready_delayed` is order-gated).
                let held = unit.delayed.iter().any(|d| d.vc == lf.vc)
                    || unit.pending_scrambles.iter().any(|p| p.vc == lf.vc);
                if held {
                    unit.delayed.push(DelayedEntry {
                        ready: now,
                        vc: lf.vc,
                        flit: lf.flit,
                        order,
                    });
                } else {
                    ctx.routers
                        .idx(dst.index())
                        .buffer_write(in_port, lf.vc, lf.flit, now);
                }
            }
        }
        if traced {
            let outcome = match decode {
                Decode::Corrected { .. } => TraceOutcome::CorrectedSingleBit,
                _ => TraceOutcome::Clean,
            };
            fx.p1_trace.push((
                link.0,
                TraceEvent::Delivered {
                    cycle: now,
                    flit: lf.flit.id,
                    link,
                    outcome,
                },
            ));
        }
        if ctx.tracing {
            fx.p1_kinds.push((
                link.0,
                TraceKind::FlitAccepted {
                    flit: lf.flit.id,
                    packet: lf.flit.packet,
                    link,
                    obfuscated: lf.obf.is_some(),
                },
            ));
        }
        let obf_success = lf.obf.map(|o| o.plan);
        ctx.links.send_ack(
            li,
            now,
            AckMsg {
                flit: lf.flit.id,
                kind: AckKind::Ack { obf_success },
            },
        );
        ctx.rev_set.set(ctx.src_pos[li] as usize);
    } else {
        let lob_attempt = match verdict.action {
            DetectorAction::RetransmitWithLob { attempt } if mitigation => Some(attempt),
            _ => None,
        };
        if traced {
            fx.p1_trace.push((
                link.0,
                TraceEvent::Delivered {
                    cycle: now,
                    flit: lf.flit.id,
                    link,
                    outcome: TraceOutcome::Nacked {
                        lob_requested: lob_attempt.is_some(),
                    },
                },
            ));
        }
        ctx.link_metrics.idx(li).nacks.inc();
        if ctx.tracing {
            fx.p1_kinds.push((
                link.0,
                TraceKind::FlitNacked {
                    flit: lf.flit.id,
                    packet: lf.flit.packet,
                    link,
                    lob_requested: lob_attempt.is_some(),
                },
            ));
        }
        ctx.links.send_ack(
            li,
            now,
            AckMsg {
                flit: lf.flit.id,
                kind: AckKind::Nack { lob_attempt },
            },
        );
        ctx.rev_set.set(ctx.src_pos[li] as usize);
    }

    if verdict.run_bist && mitigation {
        let report = Bist::scan(ctx.links.faults_mut(li));
        fx.stats.bist_scans += 1;
        ctx.link_metrics.idx(li).bist_scans.inc();
        if ctx.tracing {
            fx.p1_kinds.push((
                link.0,
                TraceKind::BistScan {
                    link,
                    passed: report.passed(),
                },
            ));
        }
        let unit = &mut ctx.routers.idx(dst.index()).inputs[in_port.index()];
        unit.detector.on_bist_result(report.passed());
        fx.p1_events.push((
            link.0,
            SimEvent::BistRan {
                link,
                passed: report.passed(),
                cycle: now,
            },
        ));
    }
    // Report classification changes (faults and obfuscation responses
    // both move the detector's belief).
    if mitigation {
        let unit = &mut ctx.routers.idx(dst.index()).inputs[in_port.index()];
        let class = unit.detector.link_class();
        if class != unit.reported_class {
            unit.reported_class = class;
            if ctx.tracing {
                fx.p1_kinds
                    .push((link.0, TraceKind::LinkClassified { link, class }));
            }
            fx.p1_events.push((
                link.0,
                SimEvent::LinkClassified {
                    link,
                    class,
                    cycle: now,
                },
            ));
        }
    }
}

/// Wire-side ordering check for an arriving flit: heads may only start
/// once the previous packet's wire stream closed; body/tail flits must
/// arrive in sequence.
fn wire_in_order(unit: &crate::input::InputUnit, lf: &LinkFlit) -> bool {
    let ivc = &unit.vcs[lf.vc.index()];
    if lf.flit.kind.carries_header() {
        ivc.wire_packet.is_none()
    } else {
        ivc.wire_packet == Some(lf.flit.packet) && lf.flit.seq == ivc.expected_seq
    }
}

/// Advance wire-side ordering state after accepting a flit (tracked
/// separately from the wormhole state machine, which may lag while the
/// head sits in RC/VA).
fn wire_advance(unit: &mut crate::input::InputUnit, lf: &LinkFlit) {
    let ivc = &mut unit.vcs[lf.vc.index()];
    if lf.flit.kind.closes_packet() {
        ivc.wire_packet = None;
        ivc.expected_seq = 0;
    } else if lf.flit.kind.carries_header() {
        ivc.wire_packet = Some(lf.flit.packet);
        ivc.expected_seq = 1;
    } else {
        ivc.expected_seq += 1;
    }
}

// Phase 2: scrambles whose partner arrived + expired undo stalls.
fn phase_resolve_holds(ctx: &PhaseCtx<'_>, plan: &ShardPlan, fx: &mut ShardFx, now: u64) {
    let ready = &mut fx.ready;
    ctx.router_set.for_each_set_in(plan.routers.clone(), |r| {
        if !*ctx.router_active.idx(r) {
            return;
        }
        let ports = ctx.routers.idx(r).inputs.len();
        for p in 0..ports {
            {
                let unit = &mut ctx.routers.idx(r).inputs[p];
                if unit.delayed.is_empty() && unit.pending_scrambles.is_empty() {
                    continue;
                }
                unit.resolve_scrambles(now);
                ready.clear();
                unit.take_ready_delayed_into(now, ready);
            }
            for &(vc, flit) in ready.iter() {
                let port = Port::from_index(p);
                ctx.routers.idx(r).buffer_write(port, vc, flit, now);
            }
        }
    });
}

// Phase 3: ACK/NACK and credit returns reach the upstream output units.
fn phase_acks_and_credits(ctx: &PhaseCtx<'_>, plan: &ShardPlan, fx: &mut ShardFx, now: u64) {
    let budget = ctx.cfg.retry_budget;
    let mitigation = ctx.cfg.mitigation;
    let ShardFx {
        acks,
        credit_vcs,
        stats,
        p3_kinds,
        p3_events,
        p3_quar,
        tel_retx_attempts,
        ..
    } = fx;
    ctx.rev_set.for_each_set_in(plan.src_range.clone(), |pos| {
        let li16 = ctx.src_order[pos];
        let li = li16 as usize;
        if ctx.links.reverse_idle(li) {
            ctx.rev_set.clear(pos);
            return;
        }
        let link = LinkId(li16);
        let (src, dir) = ctx.mesh.link_source(link);
        acks.clear();
        ctx.links.take_acks_into(li, now, acks);
        // Credit settlement is batched into per-VC counts unless a
        // sabotage hook is configured: the plain path only ever adds
        // `credits[vc] += 1` (commutative), while `LeakCredit` counts
        // individual messages in arrival order and must see each one.
        let batch = ctx.cfg.sabotage.is_none();
        let mut counts = [0u32; 16];
        if batch {
            debug_assert!((ctx.cfg.vcs as usize) <= counts.len());
            ctx.links.take_credit_counts_into(li, now, &mut counts);
        } else {
            credit_vcs.clear();
            ctx.links.take_credits_into(li, now, credit_vcs);
        }
        // Entries stamped `now + 1` (pushed by P1 earlier this cycle)
        // stay queued; only a fully drained reverse channel drops the
        // bit. P6 pushes later this cycle re-raise it.
        if ctx.links.reverse_idle(li) {
            ctx.rev_set.clear(pos);
        }
        // A link with no output unit cannot have carried traffic;
        // stray reverse-channel messages are dropped, not panicked on.
        let Some(out) = ctx.routers.idx(src.index()).outputs[dir.index()].as_mut() else {
            return;
        };
        for ack in acks.iter() {
            match ack.kind {
                AckKind::Ack { obf_success } => {
                    if let Some(entry) = out.ack(ack.flit, obf_success, now) {
                        ctx.link_metrics
                            .idx(li)
                            .delivery_attempts
                            .record(entry.attempts as u64);
                        // Deterministic sketch feed: attempt counts are
                        // simulation state, independent of sharding.
                        if ctx.telemetry {
                            tel_retx_attempts.push(entry.attempts as u64);
                        }
                    }
                }
                AckKind::Nack { lob_attempt } => {
                    out.nack(ack.flit, lob_attempt);
                    stats.retransmissions += 1;
                    // A replay that just had an L-Ob plan attached is a
                    // method selection: record it for the forensics
                    // timeline and the per-link counters.
                    if lob_attempt.is_some() {
                        if let Some(e) = out.entries.iter().find(|e| e.flit.id == ack.flit) {
                            if let Some(ow) = e.obf {
                                let (flit, packet) = (e.flit.id, e.flit.packet);
                                ctx.link_metrics.idx(li).lob_selections.inc();
                                if ctx.tracing {
                                    p3_kinds.push((
                                        li16,
                                        TraceKind::LobSelected {
                                            flit,
                                            packet,
                                            link,
                                            plan: ow.plan,
                                            attempt: ow.attempt,
                                        },
                                    ));
                                }
                            }
                        }
                    }
                    let Some(budget) = budget else {
                        continue;
                    };
                    // Bounded retransmission: one budget of retries
                    // earns forced obfuscation (when mitigation has
                    // something to offer), a second exhausted budget
                    // condemns the link to quarantine. Without
                    // mitigation there is no middle rung.
                    let Some(idx) = out.entries.iter().position(|e| e.flit.id == ack.flit) else {
                        continue;
                    };
                    let attempts = out.entries[idx].attempts;
                    let quarantine_at = if mitigation {
                        budget.saturating_mul(2)
                    } else {
                        budget
                    };
                    if attempts >= quarantine_at.max(1) {
                        // `p3_quar` holds only this shard's links, but a
                        // link is pushed only while its owner processes
                        // it, so the shard-local dedup is exactly the
                        // sequential global dedup restricted to links
                        // that could appear at all.
                        if !ctx.dead_links.contains(&link) && !p3_quar.contains(&li16) {
                            p3_quar.push(li16);
                        }
                    } else if mitigation && attempts >= budget && out.force_obfuscate(idx).is_some()
                    {
                        stats.budget_escalations += 1;
                        ctx.link_metrics.idx(li).lob_selections.inc();
                        if ctx.tracing {
                            p3_kinds.push((
                                li16,
                                TraceKind::LobEscalated {
                                    flit: ack.flit,
                                    link,
                                    attempts,
                                },
                            ));
                        }
                        p3_events.push((
                            li16,
                            SimEvent::RetryBudgetEscalated {
                                link,
                                flit: ack.flit,
                                attempts,
                                cycle: now,
                            },
                        ));
                    }
                }
            }
        }
        if batch {
            out.settle_credits(&counts, ctx.cfg.vc_depth);
            return;
        }
        for &vc in credit_vcs.iter() {
            // Conformance self-test hook: leak every Nth credit. The
            // counter lives on the output unit so the leak pattern is
            // identical at every shard count.
            if let Some(Sabotage::LeakCredit { every }) = ctx.cfg.sabotage {
                out.sab_credit_seen += 1;
                if out.sab_credit_seen.is_multiple_of(every.max(1) as u64) {
                    continue;
                }
            }
            out.credits[vc.index()] += 1;
            debug_assert!(out.credits[vc.index()] <= ctx.cfg.vc_depth);
        }
    });
}

// Phase 4: drive retransmission-buffer heads onto idle links. Iterates
// the raised launch bits (wires whose output unit may hold entries); the
// predicate checks are the sequential ones, reordered so the emptiness
// check (which decides whether the bit may drop) runs first — all three
// are pure reads, so the reorder is observation-equivalent.
fn phase_launch(ctx: &PhaseCtx<'_>, plan: &ShardPlan, fx: &mut ShardFx, now: u64) {
    let ShardFx {
        p4_kinds, p4_trace, ..
    } = fx;
    ctx.launch_set
        .for_each_set_in(plan.src_range.clone(), |pos| {
            let li16 = ctx.src_order[pos];
            let li = li16 as usize;
            let link = LinkId(li16);
            let (src, dir) = ctx.mesh.link_source(link);
            let cfg = ctx.cfg;
            let Some(out) = ctx.routers.idx(src.index()).outputs[dir.index()].as_mut() else {
                ctx.launch_set.clear(pos);
                return;
            };
            // Nothing buffered for retransmission ⇒ nothing can launch, and
            // nothing will until the ST stage pushes a fresh entry (which
            // re-raises this bit), so it can drop. (Skipping is exact: the
            // send arbiter never advances when every predicate is false.)
            if out.entries.is_empty() {
                ctx.launch_set.clear(pos);
                return;
            }
            // Dead or occupied wire: the entries still want out, keep the bit.
            if ctx.link_dead[li] || !ctx.links.idle(li) {
                return;
            }
            let Some(idx) = out.select_send(|vc| cfg.tdm_slot_open(vc, now)) else {
                return;
            };
            if cfg.mitigation {
                out.maybe_protect(idx);
            }
            let obf = out.resolve_obf_for_send(idx);
            let entry_flit = out.entries[idx].flit;
            let vc = out.entries[idx].vc;
            let wire_word = match obf {
                None => entry_flit.word,
                Some(ow) => {
                    let key = ow
                        .partner
                        .and_then(|pid| {
                            out.entries
                                .iter()
                                .find(|e| e.flit.id == pid)
                                .map(|e| e.flit.word)
                        })
                        .unwrap_or(0);
                    ow.plan.apply(entry_flit.word, key)
                }
            };
            out.mark_sent(idx, now);
            let attempt = out.entries[idx].attempts;
            ctx.link_metrics.idx(li).flits.inc();
            if attempt > 1 {
                ctx.link_metrics.idx(li).retransmissions.inc();
            }
            if ctx.tracing {
                p4_kinds.push((
                    li16,
                    TraceKind::FlitLaunched {
                        flit: entry_flit.id,
                        packet: entry_flit.packet,
                        link,
                        attempt,
                        obf: obf.map(|o| o.plan),
                    },
                ));
            }
            if ctx.cfg.trace_packet == Some(entry_flit.packet) {
                p4_trace.push((
                    li16,
                    TraceEvent::Launched {
                        cycle: now,
                        flit: entry_flit.id,
                        link,
                        obfuscated: obf.map(|o| o.plan),
                        attempt: obf.map(|o| o.attempt).unwrap_or(0),
                    },
                ));
            }
            ctx.links.launch(
                li,
                now,
                LinkFlit {
                    flit: entry_flit,
                    codeword: Secded::encode(wire_word),
                    wire_word,
                    vc,
                    obf,
                },
            );
            // The wire is now occupied: raise its forward bit for the
            // destination shard's P1 next cycle.
            ctx.fwd_set.set(ctx.dst_pos[li] as usize);
        });
}

// Phase 5: crossbar traversals commit; local ejections deliver. The
// per-ejection bookkeeping (stats, latency, events) is deferred to the
// commit step: it touches global maps (packet birth cycles) and must run
// in ascending router order, which the commit's shard-ordered walk gives
// for free.
fn phase_st(ctx: &PhaseCtx<'_>, plan: &ShardPlan, fx: &mut ShardFx, now: u64) {
    let ShardFx {
        ejections,
        p5_ejections,
        progress,
        ..
    } = fx;
    ctx.router_set.for_each_set_in(plan.routers.clone(), |r| {
        if !*ctx.router_active.idx(r) {
            return;
        }
        ejections.clear();
        ctx.routers.idx(r).st_stage_into(now, ejections);
        if !ejections.is_empty() {
            *progress = true;
        }
        for &ej in ejections.iter() {
            p5_ejections.push((r as u16, ej));
        }
        // Crossbar traversals may have pushed fresh retransmission
        // entries; raise the launch bit of every outgoing wire that now
        // has something to send. This is the only site that grows
        // `entries` (`OutputUnit::push` is called solely from the ST
        // stage), so P4's emptiness-gated clear cannot lose work —
        // crucially, `has_phase_work` ignores retransmission entries, so
        // the launch bit (not the router bit) is what keeps a draining
        // retransmission buffer scheduled.
        let node = NodeId(r as u16);
        for d in Direction::ALL {
            let pending = ctx.routers.idx(r).outputs[d.index()]
                .as_ref()
                .is_some_and(|o| !o.entries.is_empty());
            if pending {
                if let Some(l) = ctx.mesh.link_out(node, d) {
                    ctx.launch_set.set(ctx.src_pos[l.index()] as usize);
                }
            }
        }
    });
}

// Phase 6: switch allocation; credits return upstream. The feeding link
// of any input port of router `r` has destination `r`, so the pushes
// stay inside this shard's `links_dst` ownership set.
fn phase_sa(ctx: &PhaseCtx<'_>, plan: &ShardPlan, fx: &mut ShardFx, now: u64) {
    let credits = &mut fx.credits;
    ctx.router_set.for_each_set_in(plan.routers.clone(), |r| {
        if !*ctx.router_active.idx(r) {
            return;
        }
        // Conformance self-test hook: the sabotaged router never
        // performs switch allocation (a dropped SA grant, forever).
        if let Some(Sabotage::StallSaRouter { router }) = ctx.cfg.sabotage {
            if router as usize == r {
                return;
            }
        }
        let node = NodeId(r as u16);
        credits.clear();
        ctx.routers.idx(r).sa_stage_into(now, ctx.cfg, credits);
        for &cr in credits.iter() {
            // Input port Net(d) at `node` is fed by neighbour(node, d)
            // over that neighbour's link in direction opposite(d).
            if let Some(feeding) = ctx
                .mesh
                .neighbor(node, cr.in_dir)
                .and_then(|nb| ctx.mesh.link_out(nb, cr.in_dir.opposite()))
            {
                debug_assert!(
                    plan.links_dst.binary_search(&feeding.0).is_ok(),
                    "credit pushed into a link another shard owns"
                );
                ctx.links.send_credit(feeding.index(), now, cr.vc);
                ctx.rev_set.set(ctx.src_pos[feeding.index()] as usize);
            }
        }
    });
}

// Phase 7: VC allocation then route computation.
fn phase_va_rc(ctx: &PhaseCtx<'_>, plan: &ShardPlan, now: u64) {
    ctx.router_set.for_each_set_in(plan.routers.clone(), |r| {
        if !*ctx.router_active.idx(r) {
            return;
        }
        ctx.routers.idx(r).va_stage(now, ctx.cfg, ctx.routing);
        ctx.routers
            .idx(r)
            .rc_stage(now, ctx.mesh, ctx.routing, ctx.routing_epoch);
    });
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

/// A job posted to the pool: raw pointers into the caller's stack/heap,
/// valid strictly between the start and done barriers (the caller blocks
/// on the done barrier before any of them can dangle).
#[derive(Clone, Copy)]
enum Job {
    Idle,
    Run {
        ctx: *const PhaseCtx<'static>,
        plans: *const ShardPlan,
        nshards: usize,
        fx: *mut ShardFx,
        group: Group,
        now: u64,
    },
    Exit,
}

// SAFETY: the pointers inside `Run` are only dereferenced between the
// start/done barrier pair during which the posting thread guarantees
// their validity and the shard partition guarantees exclusive access.
unsafe impl Send for Job {}

struct PoolShared {
    start: Barrier,
    done: Barrier,
    job: UnsafeCell<Job>,
}

// SAFETY: `job` is written by the posting thread only while every worker
// is parked before `start` (the previous round's `done` barrier, or pool
// construction, established the happens-before edge) and read by workers
// only after `start`.
unsafe impl Sync for PoolShared {}

/// Persistent worker pool for the sharded cycle loop. Worker `w` runs
/// shard `w + 1`; the posting thread doubles as shard 0 so `threads`
/// total threads serve `threads` shards. Workers park on a blocking
/// barrier between cycles (cheap on oversubscribed machines) and are
/// joined on drop.
pub(crate) struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    pub(crate) fn new(extra_workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            start: Barrier::new(extra_workers + 1),
            done: Barrier::new(extra_workers + 1),
            job: UnsafeCell::new(Job::Idle),
        });
        let workers = (0..extra_workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("noc-shard-{}", w + 1))
                    .spawn(move || worker_loop(&shared, w + 1))
                    .expect("spawn shard worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Execute one phase group across all shards: shard 0 on the calling
    /// thread, shards 1.. on the pool. Returns after every shard's group
    /// work is complete (the done barrier).
    pub(crate) fn run(
        &self,
        ctx: &PhaseCtx<'_>,
        plans: &[ShardPlan],
        fx: *mut ShardFx,
        group: Group,
        now: u64,
    ) {
        // SAFETY: all workers are parked before `start` (see PoolShared).
        unsafe {
            *self.shared.job.get() = Job::Run {
                ctx: (ctx as *const PhaseCtx<'_>).cast::<PhaseCtx<'static>>(),
                plans: plans.as_ptr(),
                nshards: plans.len(),
                fx,
                group,
                now,
            };
        }
        self.shared.start.wait();
        // SAFETY: shard 0's fx; workers only touch fx[1..].
        run_group(ctx, &plans[0], unsafe { &mut *fx }, group, now);
        self.shared.done.wait();
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // SAFETY: same protocol as `run`; Exit makes workers break
        // without re-reading the slot.
        unsafe {
            *self.shared.job.get() = Job::Exit;
        }
        self.shared.start.wait();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, wid: usize) {
    loop {
        shared.start.wait();
        // SAFETY: read-only access after the start barrier; the posting
        // thread does not touch the slot until after the done barrier.
        let job = unsafe { *shared.job.get() };
        match job {
            Job::Run {
                ctx,
                plans,
                nshards,
                fx,
                group,
                now,
            } => {
                if wid < nshards {
                    // SAFETY: pointers valid until the done barrier; this
                    // worker exclusively owns shard `wid`'s plan and fx.
                    unsafe {
                        run_group(&*ctx, &*plans.add(wid), &mut *fx.add(wid), group, now);
                    }
                }
                shared.done.wait();
            }
            Job::Exit => break,
            Job::Idle => {
                shared.done.wait();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_partition_routers_and_links() {
        let mesh = Mesh::paper();
        for shards in [1usize, 2, 3, 4, 7, 16, 64] {
            let plans = plan_shards(&mesh, shards);
            assert_eq!(plans.len(), shards.min(16));
            // Router bands: contiguous, disjoint, covering.
            let mut next = 0usize;
            for p in &plans {
                assert_eq!(p.routers.start, next);
                assert!(!p.routers.is_empty());
                next = p.routers.end;
            }
            assert_eq!(next, mesh.routers());
            // Each link appears exactly once per partition, ascending.
            for key in [0usize, 1] {
                let mut seen = vec![false; mesh.links()];
                for p in &plans {
                    let list = if key == 0 { &p.links_dst } else { &p.links_src };
                    assert!(list.windows(2).all(|w| w[0] < w[1]), "ascending");
                    for &l in list {
                        assert!(!seen[l as usize], "link {l} owned twice");
                        seen[l as usize] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "every link owned");
            }
            // Ownership keys are honoured.
            for p in &plans {
                for &l in &p.links_dst {
                    assert!(p.routers.contains(&mesh.link_dest(LinkId(l)).index()));
                }
                for &l in &p.links_src {
                    assert!(p.routers.contains(&mesh.link_source(LinkId(l)).0.index()));
                }
            }
            // Position ranges: contiguous, sized to the link lists,
            // covering.
            let (mut dst_next, mut src_next) = (0usize, 0usize);
            for p in &plans {
                assert_eq!(p.dst_range.start, dst_next);
                assert_eq!(p.dst_range.len(), p.links_dst.len());
                dst_next = p.dst_range.end;
                assert_eq!(p.src_range.start, src_next);
                assert_eq!(p.src_range.len(), p.links_src.len());
                src_next = p.src_range.end;
            }
            assert_eq!(dst_next, mesh.links());
            assert_eq!(src_next, mesh.links());
        }
    }

    #[test]
    fn link_orders_are_inverse_bijections_in_shard_order() {
        let mesh = Mesh::paper();
        for shards in [1usize, 3, 16] {
            let plans = plan_shards(&mesh, shards);
            let o = link_orders(&plans, mesh.links());
            for li in 0..mesh.links() {
                assert_eq!(o.dst_order[o.dst_pos[li] as usize] as usize, li);
                assert_eq!(o.src_order[o.src_pos[li] as usize] as usize, li);
            }
            for p in &plans {
                // Each shard's positions are its dense range, ascending
                // link id within it.
                let dst: Vec<u16> = p.dst_range.clone().map(|pos| o.dst_order[pos]).collect();
                assert_eq!(dst, p.links_dst);
                let src: Vec<u16> = p.src_range.clone().map(|pos| o.src_order[pos]).collect();
                assert_eq!(src, p.links_src);
            }
        }
    }

    #[test]
    fn shard_count_is_clamped() {
        let mesh = Mesh::new(2, 2, 4);
        assert_eq!(plan_shards(&mesh, 0).len(), 1);
        assert_eq!(plan_shards(&mesh, 9).len(), 4);
        let big = Mesh::new(32, 32, 1);
        assert_eq!(plan_shards(&big, 1024).len(), MAX_SHARDS);
    }

    #[test]
    fn merge_keyed_reconstructs_global_order() {
        let mut fxs = vec![ShardFx::default(), ShardFx::default(), ShardFx::default()];
        // Disjoint ascending keys per shard, interleaved globally.
        fxs[0].p1_kinds = [0u16, 3, 9]
            .iter()
            .map(|&k| {
                (
                    k,
                    TraceKind::BistScan {
                        link: LinkId(k),
                        passed: true,
                    },
                )
            })
            .collect();
        fxs[1].p1_kinds = [1u16, 4]
            .iter()
            .map(|&k| {
                (
                    k,
                    TraceKind::BistScan {
                        link: LinkId(k),
                        passed: true,
                    },
                )
            })
            .collect();
        fxs[2].p1_kinds = [2u16, 8]
            .iter()
            .map(|&k| {
                (
                    k,
                    TraceKind::BistScan {
                        link: LinkId(k),
                        passed: true,
                    },
                )
            })
            .collect();
        let mut order = Vec::new();
        merge_keyed(
            &mut fxs,
            |f| &mut f.p1_kinds,
            |k| {
                if let TraceKind::BistScan { link, .. } = k {
                    order.push(link.0);
                }
            },
        );
        assert_eq!(order, vec![0, 1, 2, 3, 4, 8, 9]);
        assert!(fxs.iter().all(|f| f.p1_kinds.is_empty()), "lists drained");
    }

    #[test]
    fn merge_keyed_preserves_intra_key_order() {
        // Two records under the same key (one arrival emitting twice)
        // must stay in push order.
        let mut fxs = vec![ShardFx::default(), ShardFx::default()];
        fxs[0].p1_kinds = vec![
            (
                5,
                TraceKind::BistScan {
                    link: LinkId(5),
                    passed: true,
                },
            ),
            (
                5,
                TraceKind::BistScan {
                    link: LinkId(5),
                    passed: false,
                },
            ),
        ];
        fxs[1].p1_kinds = vec![(
            2,
            TraceKind::BistScan {
                link: LinkId(2),
                passed: true,
            },
        )];
        let mut order = Vec::new();
        merge_keyed(
            &mut fxs,
            |f| &mut f.p1_kinds,
            |k| {
                if let TraceKind::BistScan { link, passed } = k {
                    order.push((link.0, passed));
                }
            },
        );
        assert_eq!(order, vec![(2, true), (5, true), (5, false)]);
    }
}
