//! The physical link: one flit slot of forward wire, plus reverse control
//! wires carrying ACK/NACKs and credit returns (each with one cycle of
//! latency).

use crate::fault::LinkFaults;
use crate::message::{AckMsg, LinkFlit};
use noc_types::VcId;
use std::collections::VecDeque;

/// One unidirectional router-to-router link and its reverse control wires.
#[derive(Debug)]
pub struct LinkWire {
    /// Flit launched last cycle, delivered when `now >= deliver_at`.
    pub(crate) in_flight: Option<(u64, LinkFlit)>,
    /// ACK/NACK messages heading upstream: `(deliver_cycle, msg)`.
    pub(crate) acks: VecDeque<(u64, AckMsg)>,
    /// Credit returns heading upstream: `(deliver_cycle, vc)`.
    pub(crate) credits: VecDeque<(u64, VcId)>,
    /// The fault layer (transients, stuck wires, trojan).
    pub faults: LinkFaults,
    /// Lifetime flit count (Fig. 1(c) per-link traffic share).
    pub flits_carried: u64,
}

/// Link traversal latency in cycles (the LT pipeline stage).
pub const LT_CYCLES: u64 = 1;
/// Reverse-channel latency for ACKs and credits.
pub const REVERSE_CYCLES: u64 = 1;

impl LinkWire {
    /// A fresh idle link with the given fault layer.
    pub fn new(faults: LinkFaults) -> Self {
        Self {
            in_flight: None,
            acks: VecDeque::new(),
            credits: VecDeque::new(),
            faults,
            flits_carried: 0,
        }
    }

    /// Whether a new flit can launch this cycle.
    pub fn idle(&self) -> bool {
        self.in_flight.is_none()
    }

    /// Fraction of `elapsed` cycles the wire spent occupied: each carried
    /// flit holds it for [`LT_CYCLES`].
    pub fn utilization(&self, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.flits_carried * LT_CYCLES) as f64 / elapsed as f64
        }
    }

    /// The flit currently crossing, if any (quarantine victim scan).
    pub fn in_flight(&self) -> Option<&LinkFlit> {
        self.in_flight.as_ref().map(|(_, lf)| lf)
    }

    /// Drop the in-flight flit when `victim` says so (link quarantine:
    /// the copy's retransmission entry is purged with it, so delivery
    /// would resurrect a packet the network already wrote off).
    pub fn purge_in_flight(&mut self, victim: impl Fn(&LinkFlit) -> bool) {
        if self.in_flight.as_ref().is_some_and(|(_, lf)| victim(lf)) {
            self.in_flight = None;
        }
    }

    /// Launch a flit; it arrives after [`LT_CYCLES`].
    pub fn launch(&mut self, now: u64, lf: LinkFlit) {
        debug_assert!(self.idle(), "link is a single-flit pipeline");
        self.in_flight = Some((now + LT_CYCLES, lf));
        self.flits_carried += 1;
    }

    /// Take the flit arriving this cycle, applying the fault layer.
    pub fn deliver(&mut self, now: u64) -> Option<LinkFlit> {
        match self.in_flight {
            Some((at, lf)) if at <= now => {
                self.in_flight = None;
                let tampered = self.faults.traverse(
                    now,
                    lf.wire_word,
                    lf.flit.kind.carries_header(),
                    lf.codeword,
                );
                Some(LinkFlit {
                    codeword: tampered,
                    ..lf
                })
            }
            _ => None,
        }
    }

    /// Queue an ACK/NACK for the upstream router.
    pub fn send_ack(&mut self, now: u64, msg: AckMsg) {
        self.acks.push_back((now + REVERSE_CYCLES, msg));
    }

    /// Queue a credit return for the upstream router.
    pub fn send_credit(&mut self, now: u64, vc: VcId) {
        self.credits.push_back((now + REVERSE_CYCLES, vc));
    }

    /// Whether the reverse control wires carry nothing at all — lets the
    /// per-cycle ACK/credit phase skip idle links without draining them.
    pub fn reverse_idle(&self) -> bool {
        self.acks.is_empty() && self.credits.is_empty()
    }

    /// Credit returns currently riding the reverse wire for `vc`
    /// (in-flight credits belong to the flow-control books audited by
    /// [`crate::Simulator::check_network_invariants`]).
    pub fn reverse_credits_for(&self, vc: VcId) -> usize {
        self.credits.iter().filter(|(_, v)| *v == vc).count()
    }

    /// Whether a successful-delivery ACK for `flit` is riding the reverse
    /// wire. Quarantine settlement consults this: a success ACK means the
    /// downstream router accepted the flit, so the retransmission entry's
    /// buffer-slot credit is already travelling back (or has arrived) as
    /// an ordinary credit return and must not be restored again.
    pub fn reverse_ack_success_for(&self, flit: noc_types::FlitId) -> bool {
        self.acks
            .iter()
            .any(|(_, m)| m.flit == flit && matches!(m.kind, crate::message::AckKind::Ack { .. }))
    }

    /// Drain ACKs that have arrived upstream.
    /// (Test-friendly wrapper over [`LinkWire::take_acks_into`].)
    pub fn take_acks(&mut self, now: u64) -> Vec<AckMsg> {
        let mut out = Vec::new();
        self.take_acks_into(now, &mut out);
        out
    }

    /// Append ACKs that have arrived upstream to `out` (not cleared first).
    pub fn take_acks_into(&mut self, now: u64, out: &mut Vec<AckMsg>) {
        while let Some((at, _)) = self.acks.front() {
            if *at <= now {
                out.push(self.acks.pop_front().unwrap().1);
            } else {
                break;
            }
        }
    }

    /// Drain credits that have arrived upstream.
    /// (Test-friendly wrapper over [`LinkWire::take_credits_into`].)
    pub fn take_credits(&mut self, now: u64) -> Vec<VcId> {
        let mut out = Vec::new();
        self.take_credits_into(now, &mut out);
        out
    }

    /// Append credits that have arrived upstream to `out` (not cleared
    /// first).
    pub fn take_credits_into(&mut self, now: u64, out: &mut Vec<VcId>) {
        while let Some((at, _)) = self.credits.front() {
            if *at <= now {
                out.push(self.credits.pop_front().unwrap().1);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::AckKind;
    use noc_ecc::Secded;
    use noc_types::{Flit, FlitId, FlitKind, Header, NodeId, PacketId};

    fn lf() -> LinkFlit {
        let h = Header {
            src: NodeId(0),
            dest: NodeId(1),
            vc: VcId(0),
            mem_addr: 0,
            thread: 0,
            len: 1,
        };
        let flit = Flit::head(FlitId(1), PacketId(1), FlitKind::Single, h);
        LinkFlit {
            flit,
            codeword: Secded::encode(flit.word),
            wire_word: flit.word,
            vc: VcId(0),
            obf: None,
        }
    }

    #[test]
    fn flit_takes_one_cycle_to_cross() {
        let mut link = LinkWire::new(LinkFaults::healthy(0));
        link.launch(10, lf());
        assert!(!link.idle());
        assert!(link.deliver(10).is_none(), "not there yet");
        let got = link.deliver(11).expect("arrives after LT");
        assert_eq!(got.flit.id, FlitId(1));
        assert!(link.idle());
        assert_eq!(link.flits_carried, 1);
    }

    #[test]
    fn acks_and_credits_take_a_cycle_back() {
        let mut link = LinkWire::new(LinkFaults::healthy(0));
        link.send_ack(
            5,
            AckMsg {
                flit: FlitId(1),
                kind: AckKind::Ack { obf_success: None },
            },
        );
        link.send_credit(5, VcId(2));
        assert!(link.take_acks(5).is_empty());
        assert!(link.take_credits(5).is_empty());
        assert_eq!(link.take_acks(6).len(), 1);
        assert_eq!(link.take_credits(6), vec![VcId(2)]);
        // Drained exactly once.
        assert!(link.take_acks(7).is_empty());
    }

    #[test]
    fn delivery_applies_fault_layer() {
        use crate::fault::StuckWires;
        let faults = LinkFaults::healthy(0).with_stuck(StuckWires {
            stuck_one: 1 << 3,
            stuck_zero: 0,
        });
        let mut link = LinkWire::new(faults);
        let flit = lf();
        let clean_cw = flit.codeword;
        link.launch(0, flit);
        let got = link.deliver(1).unwrap();
        assert_eq!(got.codeword.0 | (1 << 3), got.codeword.0);
        // Either the bit was already 1 (no-op) or it differs now.
        let _ = clean_cw;
    }
}
