//! The physical link datapath: one flit slot of forward wire per link,
//! plus reverse control wires carrying ACK/NACKs and credit returns (each
//! with one cycle of latency).
//!
//! # Structure-of-arrays layout
//!
//! All links live in one [`LinkLanes`] pool, field-by-field in dense
//! parallel arrays rather than an array of per-link structs:
//!
//! ```text
//!   index:          0        1        2       ...      L-1
//!   arrive_at    [ u64   | u64    | u64    | ... ]  (u64::MAX = idle)
//!   flits        [ Option<LinkFlit> ............. ]  payload of the wire
//!   acks         [ VecDeque<(u64, AckMsg)> ...... ]  reverse channel
//!   credits      [ VecDeque<(u64, VcId)> ........ ]  reverse channel
//!   faults       [ LinkFaults .................... ]  transients/stuck/trojan
//!   flits_carried[ u64 .......................... ]  lifetime counter
//! ```
//!
//! The hot per-cycle predicates (`idle`, "anything arriving?") touch only
//! the 8-byte `arrive_at` lane, and the SECDED ingress kernel in
//! `par.rs` batches decodes across all arriving links by first draining
//! the wire words into a dense scratch vector, then decoding them in a
//! tight loop, then dispatching the (much colder) per-router arrival
//! handling. Per-link fault state — including the per-link RNG stream and
//! the trojan FSM — stays link-local inside its `faults` slot, so the
//! batched order is observation-identical to the old per-struct walk.
//!
//! Invariant: `arrive_at[i] == u64::MAX` ⇔ `flits[i].is_none()`.

use crate::fault::LinkFaults;
use crate::message::{AckMsg, LinkFlit};
use noc_types::VcId;
use std::collections::VecDeque;
use std::marker::PhantomData;

/// Link traversal latency in cycles (the LT pipeline stage).
pub const LT_CYCLES: u64 = 1;
/// Reverse-channel latency for ACKs and credits.
pub const REVERSE_CYCLES: u64 = 1;

/// Sentinel for "no flit on the wire".
const IDLE: u64 = u64::MAX;

/// All unidirectional router-to-router links, structure-of-arrays.
#[derive(Debug)]
pub struct LinkLanes {
    /// Cycle at which the in-flight flit is delivered ([`IDLE`] if none).
    pub(crate) arrive_at: Vec<u64>,
    /// The flit crossing each wire.
    pub(crate) flits: Vec<Option<LinkFlit>>,
    /// ACK/NACK messages heading upstream: `(deliver_cycle, msg)`.
    pub(crate) acks: Vec<VecDeque<(u64, AckMsg)>>,
    /// Credit returns heading upstream: `(deliver_cycle, vc)`.
    pub(crate) credits: Vec<VecDeque<(u64, VcId)>>,
    /// The fault layer (transients, stuck wires, trojan, per-link RNG).
    pub(crate) faults: Vec<LinkFaults>,
    /// Lifetime flit count (Fig. 1(c) per-link traffic share).
    pub(crate) flits_carried: Vec<u64>,
}

impl LinkLanes {
    /// A pool of `faults.len()` fresh idle links.
    pub fn new(faults: Vec<LinkFaults>) -> Self {
        let n = faults.len();
        Self {
            arrive_at: vec![IDLE; n],
            flits: vec![None; n],
            acks: (0..n).map(|_| VecDeque::new()).collect(),
            credits: (0..n).map(|_| VecDeque::new()).collect(),
            faults,
            flits_carried: vec![0; n],
        }
    }

    /// Number of links in the pool.
    pub fn len(&self) -> usize {
        self.arrive_at.len()
    }

    /// Whether the pool is empty (degenerate 1×1 mesh).
    pub fn is_empty(&self) -> bool {
        self.arrive_at.is_empty()
    }

    /// Whether a new flit can launch on link `i` this cycle.
    #[inline]
    pub fn idle(&self, i: usize) -> bool {
        self.arrive_at[i] == IDLE
    }

    /// Fraction of `elapsed` cycles wire `i` spent occupied: each carried
    /// flit holds it for [`LT_CYCLES`].
    pub fn utilization(&self, i: usize, elapsed: u64) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            (self.flits_carried[i] * LT_CYCLES) as f64 / elapsed as f64
        }
    }

    /// Lifetime flit count for link `i`.
    pub fn flits_carried(&self, i: usize) -> u64 {
        self.flits_carried[i]
    }

    /// The flit currently crossing link `i`, if any (quarantine victim
    /// scan, invariant audits).
    #[inline]
    pub fn in_flight(&self, i: usize) -> Option<&LinkFlit> {
        self.flits[i].as_ref()
    }

    /// Drop the in-flight flit on link `i` when `victim` says so (link
    /// quarantine: the copy's retransmission entry is purged with it, so
    /// delivery would resurrect a packet the network already wrote off).
    pub fn purge_in_flight(&mut self, i: usize, victim: impl Fn(&LinkFlit) -> bool) {
        if self.flits[i].as_ref().is_some_and(&victim) {
            self.flits[i] = None;
            self.arrive_at[i] = IDLE;
        }
    }

    /// Launch a flit on link `i`; it arrives after [`LT_CYCLES`].
    pub fn launch(&mut self, i: usize, now: u64, lf: LinkFlit) {
        debug_assert!(self.idle(i), "link is a single-flit pipeline");
        self.arrive_at[i] = now + LT_CYCLES;
        self.flits[i] = Some(lf);
        self.flits_carried[i] += 1;
    }

    /// Take the flit arriving on link `i` this cycle, applying the fault
    /// layer.
    pub fn deliver(&mut self, i: usize, now: u64) -> Option<LinkFlit> {
        if self.arrive_at[i] > now {
            return None;
        }
        self.arrive_at[i] = IDLE;
        let lf = self.flits[i].take().expect("arrive_at/flits invariant");
        let tampered = self.faults[i].traverse(
            now,
            lf.wire_word,
            lf.flit.kind.carries_header(),
            lf.codeword,
        );
        Some(LinkFlit {
            codeword: tampered,
            ..lf
        })
    }

    /// Queue an ACK/NACK for the upstream router of link `i`.
    pub fn send_ack(&mut self, i: usize, now: u64, msg: AckMsg) {
        self.acks[i].push_back((now + REVERSE_CYCLES, msg));
    }

    /// Queue a credit return for the upstream router of link `i`.
    pub fn send_credit(&mut self, i: usize, now: u64, vc: VcId) {
        self.credits[i].push_back((now + REVERSE_CYCLES, vc));
    }

    /// Whether the reverse control wires of link `i` carry nothing at all
    /// — lets the per-cycle ACK/credit phase skip idle links without
    /// draining them.
    #[inline]
    pub fn reverse_idle(&self, i: usize) -> bool {
        self.acks[i].is_empty() && self.credits[i].is_empty()
    }

    /// Credit returns currently riding the reverse wire of link `i` for
    /// `vc` (in-flight credits belong to the flow-control books audited
    /// by [`crate::Simulator::check_network_invariants`]).
    pub fn reverse_credits_for(&self, i: usize, vc: VcId) -> usize {
        self.credits[i].iter().filter(|(_, v)| *v == vc).count()
    }

    /// Whether a successful-delivery ACK for `flit` is riding the reverse
    /// wire of link `i`. Quarantine settlement consults this: a success
    /// ACK means the downstream router accepted the flit, so the
    /// retransmission entry's buffer-slot credit is already travelling
    /// back (or has arrived) as an ordinary credit return and must not be
    /// restored again.
    pub fn reverse_ack_success_for(&self, i: usize, flit: noc_types::FlitId) -> bool {
        self.acks[i]
            .iter()
            .any(|(_, m)| m.flit == flit && matches!(m.kind, crate::message::AckKind::Ack { .. }))
    }

    /// Drain ACKs that have arrived upstream of link `i`.
    /// (Test-friendly wrapper over [`LinkLanes::take_acks_into`].)
    pub fn take_acks(&mut self, i: usize, now: u64) -> Vec<AckMsg> {
        let mut out = Vec::new();
        self.take_acks_into(i, now, &mut out);
        out
    }

    /// Append ACKs that have arrived upstream of link `i` to `out` (not
    /// cleared first).
    pub fn take_acks_into(&mut self, i: usize, now: u64, out: &mut Vec<AckMsg>) {
        while let Some((at, _)) = self.acks[i].front() {
            if *at <= now {
                out.push(self.acks[i].pop_front().unwrap().1);
            } else {
                break;
            }
        }
    }

    /// Drain credits that have arrived upstream of link `i`.
    /// (Test-friendly wrapper over [`LinkLanes::take_credits_into`].)
    pub fn take_credits(&mut self, i: usize, now: u64) -> Vec<VcId> {
        let mut out = Vec::new();
        self.take_credits_into(i, now, &mut out);
        out
    }

    /// Append credits that have arrived upstream of link `i` to `out`
    /// (not cleared first).
    pub fn take_credits_into(&mut self, i: usize, now: u64, out: &mut Vec<VcId>) {
        while let Some((at, _)) = self.credits[i].front() {
            if *at <= now {
                out.push(self.credits[i].pop_front().unwrap().1);
            } else {
                break;
            }
        }
    }

    /// Drain arrived credits of link `i` into per-VC counts: `counts[v]`
    /// gains one per credit for VC `v`. Same drain condition as
    /// [`LinkLanes::take_credits_into`]; only the representation differs
    /// (a histogram instead of an ordered list), which is lossless for
    /// the batched settlement path because credit addition commutes.
    pub fn take_credit_counts_into(&mut self, i: usize, now: u64, counts: &mut [u32]) {
        while let Some((at, vc)) = self.credits[i].front() {
            if *at <= now {
                counts[vc.index()] += 1;
                self.credits[i].pop_front();
            } else {
                break;
            }
        }
    }

    /// Fault layer of link `i`.
    pub fn faults(&self, i: usize) -> &LinkFaults {
        &self.faults[i]
    }

    /// Mutable fault layer of link `i` (trojan mounting, BIST repair).
    pub fn faults_mut(&mut self, i: usize) -> &mut LinkFaults {
        &mut self.faults[i]
    }

    /// A raw-pointer view for the sharded engine (see [`LanesView`]).
    pub(crate) fn view(&mut self) -> LanesView<'_> {
        LanesView {
            arrive_at: self.arrive_at.as_mut_ptr(),
            flits: self.flits.as_mut_ptr(),
            acks: self.acks.as_mut_ptr(),
            credits: self.credits.as_mut_ptr(),
            faults: self.faults.as_mut_ptr(),
            flits_carried: self.flits_carried.as_mut_ptr(),
            len: self.arrive_at.len(),
            _marker: PhantomData,
        }
    }
}

/// Shared view over [`LinkLanes`] handing out `&mut` access to individual
/// link slots, mirroring `par::DisjointMut` at element granularity.
///
/// # Safety contract
///
/// Each method materialises `&mut` references only to the lane elements of
/// the requested index, never to a whole array or the pool. Soundness
/// therefore rests on the same partition argument as `DisjointMut`: within
/// a barrier group, every link index is touched by exactly one shard (the
/// owner of its `links_dst` or `links_src` slot for that group), so no two
/// threads ever form references to the same element concurrently.
pub(crate) struct LanesView<'a> {
    arrive_at: *mut u64,
    flits: *mut Option<LinkFlit>,
    acks: *mut VecDeque<(u64, AckMsg)>,
    credits: *mut VecDeque<(u64, VcId)>,
    faults: *mut LinkFaults,
    flits_carried: *mut u64,
    len: usize,
    _marker: PhantomData<&'a mut LinkLanes>,
}

// Safety: access is partitioned per the struct-level contract.
unsafe impl Send for LanesView<'_> {}
unsafe impl Sync for LanesView<'_> {}

impl LanesView<'_> {
    #[inline]
    fn check(&self, i: usize) {
        debug_assert!(i < self.len, "link index out of partition bounds");
    }

    /// Whether a new flit can launch on link `i` this cycle.
    #[inline]
    pub(crate) fn idle(&self, i: usize) -> bool {
        self.check(i);
        unsafe { *self.arrive_at.add(i) == IDLE }
    }

    /// Launch a flit on link `i`; it arrives after [`LT_CYCLES`].
    pub(crate) fn launch(&self, i: usize, now: u64, lf: LinkFlit) {
        self.check(i);
        debug_assert!(self.idle(i), "link is a single-flit pipeline");
        unsafe {
            *self.arrive_at.add(i) = now + LT_CYCLES;
            *self.flits.add(i) = Some(lf);
            *self.flits_carried.add(i) += 1;
        }
    }

    /// Take the flit arriving on link `i` this cycle *without* the fault
    /// traversal — the batched SECDED ingress runs faults and decode in
    /// its own dense passes (see `par::phase_link_delivery`).
    pub(crate) fn take_arrival(&self, i: usize, now: u64) -> Option<LinkFlit> {
        self.check(i);
        unsafe {
            let at = &mut *self.arrive_at.add(i);
            if *at > now {
                return None;
            }
            *at = IDLE;
            Some(
                (*self.flits.add(i))
                    .take()
                    .expect("arrive_at/flits invariant"),
            )
        }
    }

    /// Apply link `i`'s fault layer to a flit taken via
    /// [`LanesView::take_arrival`]. Kept separate so the caller can run
    /// all fault traversals back-to-back over the dense arrival batch.
    pub(crate) fn traverse(&self, i: usize, now: u64, lf: LinkFlit) -> LinkFlit {
        self.check(i);
        let faults = unsafe { &mut *self.faults.add(i) };
        let tampered = faults.traverse(
            now,
            lf.wire_word,
            lf.flit.kind.carries_header(),
            lf.codeword,
        );
        LinkFlit {
            codeword: tampered,
            ..lf
        }
    }

    /// Queue an ACK/NACK for the upstream router of link `i`.
    pub(crate) fn send_ack(&self, i: usize, now: u64, msg: AckMsg) {
        self.check(i);
        unsafe { (*self.acks.add(i)).push_back((now + REVERSE_CYCLES, msg)) }
    }

    /// Queue a credit return for the upstream router of link `i`.
    pub(crate) fn send_credit(&self, i: usize, now: u64, vc: VcId) {
        self.check(i);
        unsafe { (*self.credits.add(i)).push_back((now + REVERSE_CYCLES, vc)) }
    }

    /// Whether the reverse control wires of link `i` are empty.
    #[inline]
    pub(crate) fn reverse_idle(&self, i: usize) -> bool {
        self.check(i);
        unsafe { (*self.acks.add(i)).is_empty() && (*self.credits.add(i)).is_empty() }
    }

    /// Append ACKs that have arrived upstream of link `i` to `out`.
    pub(crate) fn take_acks_into(&self, i: usize, now: u64, out: &mut Vec<AckMsg>) {
        self.check(i);
        let acks = unsafe { &mut *self.acks.add(i) };
        while let Some((at, _)) = acks.front() {
            if *at <= now {
                out.push(acks.pop_front().unwrap().1);
            } else {
                break;
            }
        }
    }

    /// Append credits that have arrived upstream of link `i` to `out`.
    pub(crate) fn take_credits_into(&self, i: usize, now: u64, out: &mut Vec<VcId>) {
        self.check(i);
        let credits = unsafe { &mut *self.credits.add(i) };
        while let Some((at, _)) = credits.front() {
            if *at <= now {
                out.push(credits.pop_front().unwrap().1);
            } else {
                break;
            }
        }
    }

    /// Drain arrived credits of link `i` into per-VC counts (sharded
    /// counterpart of [`LinkLanes::take_credit_counts_into`]).
    pub(crate) fn take_credit_counts_into(&self, i: usize, now: u64, counts: &mut [u32]) {
        self.check(i);
        let credits = unsafe { &mut *self.credits.add(i) };
        while let Some((at, vc)) = credits.front() {
            if *at <= now {
                counts[vc.index()] += 1;
                credits.pop_front();
            } else {
                break;
            }
        }
    }

    /// Mutable fault layer of link `i` (BIST scan on detector verdicts).
    // The `&self -> &mut` shape is the point of the view: aliasing is
    // excluded by the per-group index partition documented on the struct,
    // not by the borrow checker (same contract as `DisjointMut::get`).
    #[allow(clippy::mut_from_ref)]
    pub(crate) fn faults_mut(&self, i: usize) -> &mut LinkFaults {
        self.check(i);
        unsafe { &mut *self.faults.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::AckKind;
    use noc_ecc::Secded;
    use noc_types::{Flit, FlitId, FlitKind, Header, NodeId, PacketId};

    fn lf() -> LinkFlit {
        let h = Header {
            src: NodeId(0),
            dest: NodeId(1),
            vc: VcId(0),
            mem_addr: 0,
            thread: 0,
            len: 1,
        };
        let flit = Flit::head(FlitId(1), PacketId(1), FlitKind::Single, h);
        LinkFlit {
            flit,
            codeword: Secded::encode(flit.word),
            wire_word: flit.word,
            vc: VcId(0),
            obf: None,
        }
    }

    fn one_link(faults: LinkFaults) -> LinkLanes {
        LinkLanes::new(vec![faults])
    }

    #[test]
    fn flit_takes_one_cycle_to_cross() {
        let mut lanes = one_link(LinkFaults::healthy(0));
        lanes.launch(0, 10, lf());
        assert!(!lanes.idle(0));
        assert!(lanes.deliver(0, 10).is_none(), "not there yet");
        let got = lanes.deliver(0, 11).expect("arrives after LT");
        assert_eq!(got.flit.id, FlitId(1));
        assert!(lanes.idle(0));
        assert_eq!(lanes.flits_carried(0), 1);
    }

    #[test]
    fn acks_and_credits_take_a_cycle_back() {
        let mut lanes = one_link(LinkFaults::healthy(0));
        lanes.send_ack(
            0,
            5,
            AckMsg {
                flit: FlitId(1),
                kind: AckKind::Ack { obf_success: None },
            },
        );
        lanes.send_credit(0, 5, VcId(2));
        assert!(lanes.take_acks(0, 5).is_empty());
        assert!(lanes.take_credits(0, 5).is_empty());
        assert_eq!(lanes.take_acks(0, 6).len(), 1);
        assert_eq!(lanes.take_credits(0, 6), vec![VcId(2)]);
        // Drained exactly once.
        assert!(lanes.take_acks(0, 7).is_empty());
    }

    #[test]
    fn delivery_applies_fault_layer() {
        use crate::fault::StuckWires;
        let faults = LinkFaults::healthy(0).with_stuck(StuckWires {
            stuck_one: 1 << 3,
            stuck_zero: 0,
        });
        let mut lanes = one_link(faults);
        let flit = lf();
        let clean_cw = flit.codeword;
        lanes.launch(0, 0, flit);
        let got = lanes.deliver(0, 1).unwrap();
        assert_eq!(got.codeword.0 | (1 << 3), got.codeword.0);
        // Either the bit was already 1 (no-op) or it differs now.
        let _ = clean_cw;
    }

    #[test]
    fn view_take_arrival_then_traverse_matches_deliver() {
        use crate::fault::StuckWires;
        let mk = || {
            LinkFaults::healthy(7).with_stuck(StuckWires {
                stuck_one: 1 << 5,
                stuck_zero: 0,
            })
        };
        let mut a = one_link(mk());
        let mut b = one_link(mk());
        a.launch(0, 0, lf());
        b.launch(0, 0, lf());
        let whole = a.deliver(0, 1).unwrap();
        let view = b.view();
        let taken = view.take_arrival(0, 1).expect("due");
        let split = view.traverse(0, 1, taken);
        assert_eq!(whole.codeword, split.codeword);
        assert_eq!(whole.flit.id, split.flit.id);
        assert!(b.idle(0));
    }
}
