//! Simulator configuration.

use crate::watchdog::WatchdogConfig;
use noc_mitigation::DetectorConfig;
use noc_types::Mesh;

/// Where the retransmission buffers live (the paper evaluates both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetxScheme {
    /// Shared slots per output port, after the crossbar — the paper's
    /// worst case (head-of-line blocking across VCs) and the default.
    Output,
    /// Slots partitioned per VC: a NACKed flit only blocks its own VC.
    PerVc,
}

/// Quality-of-service mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QosMode {
    /// Plain best-effort network.
    None,
    /// SurfNoC-style time-division multiplexing into `domains` groups.
    /// VCs are partitioned round-robin across domains and a domain's flits
    /// may only win switch allocation / launch on its time slots.
    Tdm {
        /// Number of non-interfering domains.
        domains: u8,
    },
}

/// A deliberate, opt-in defect compiled into the simulator's cycle loop.
///
/// Sabotage exists for one purpose: proving that the differential
/// conformance oracle (`crates/conformance`) actually detects real bugs
/// and shrinks them to small counterexamples. Each variant models a class
/// of regression a performance rewrite could plausibly introduce. All
/// production configurations leave `SimConfig::sabotage` at `None`, and
/// the hooks reduce to a single `Option` test on that path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// The named router never performs switch allocation: every flit that
    /// reaches one of its input VCs stalls forever (a dropped SA grant).
    StallSaRouter {
        /// Router whose SA stage is disabled.
        router: u16,
    },
    /// Every `every`-th credit return arriving upstream evaporates
    /// instead of replenishing the output's credit counter (a
    /// flow-control leak that slowly strangles a VC).
    LeakCredit {
        /// Period of the leak (1 = drop every credit).
        every: u32,
    },
    /// Every `every`-th ejected flit is counted twice in
    /// `delivered_flits` (a statistics-accounting bug).
    OvercountDelivered {
        /// Period of the overcount (1 = double-count every ejection).
        every: u32,
    },
    /// The quiescence fast-forward engine overshoots: whenever a skip
    /// window is bounded by the traffic source's injection horizon (not
    /// by the caller's cycle budget), it skips one cycle *past* the
    /// horizon — exactly the off-by-one a horizon derivation bug would
    /// produce, swallowing the first injection of the next burst.
    OverSkip,
}

/// Structured-tracing configuration (see [`crate::trace`]). Absent from
/// the config (`SimConfig::trace = None`), the simulator holds no
/// recorder and every emission site reduces to one `Option` test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring-buffer capacity in records; the oldest record is evicted
    /// (and counted) once the buffer is full. Sinks attached via
    /// [`crate::Simulator::set_trace_sink`] still see the full stream.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { capacity: 65536 }
    }
}

/// Full simulator configuration. `SimConfig::paper()` reproduces the
/// evaluation platform of the paper exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The mesh to simulate.
    pub mesh: Mesh,
    /// Virtual channels per port.
    pub vcs: u8,
    /// Buffer slots (flits) per VC.
    pub vc_depth: u8,
    /// Retransmission buffer slots per output port (or per VC under
    /// [`RetxScheme::PerVc`]).
    pub retx_depth: u8,
    /// Retransmission scheme (output-shared or per-VC).
    pub retx_scheme: RetxScheme,
    /// Quality-of-service mode (none, or SurfNoC-style TDM domains).
    pub qos: QosMode,
    /// Enable the threat detector + L-Ob mitigation path. When off, NACKs
    /// trigger plain retransmission forever (Fig. 11(a) behaviour).
    pub mitigation: bool,
    /// Threat-detector thresholds (fault classification and escalation).
    pub detector: DetectorConfig,
    /// Injection-queue length (flits) past which a core counts as "full"
    /// for the Fig. 11/12 utilisation bins.
    pub injection_full_threshold: usize,
    /// Record a statistics snapshot every this many cycles (1 = every
    /// cycle; larger values keep long runs cheap).
    pub snapshot_interval: u64,
    /// An output port whose oldest retransmission entry has waited this
    /// many cycles counts as "blocked" in the router statistics.
    pub blocked_threshold: u64,
    /// Record a [`crate::message::TraceEvent`] trail for this packet.
    pub trace_packet: Option<noc_types::PacketId>,
    /// Per-entry retransmission budget. `None` reproduces the paper's
    /// unbounded replay (Fig. 11(a) requires it: the DoS *is* the endless
    /// retransmission). `Some(n)`: once an entry has been launched `n`
    /// times, the simulator escalates — force L-Ob if mitigation is on and
    /// the entry is not yet obfuscated, else quarantine the link and
    /// reroute around it (graceful degradation).
    pub retry_budget: Option<u32>,
    /// Audit every router against the wormhole/flow-control invariants
    /// every this many cycles during guarded runs
    /// ([`crate::Simulator::try_step`] and friends). `None` disables the
    /// audit (the default: it is O(routers × ports × vcs) per check).
    pub check_invariants_every: Option<u64>,
    /// Arm the deadlock/livelock watchdog for guarded runs. `None` keeps
    /// the legacy spin-until-budget behaviour.
    pub watchdog: Option<WatchdogConfig>,
    /// Arm the structured event tracer ([`crate::trace`]). `None` (the
    /// default) records nothing and perturbs nothing.
    pub trace: Option<TraceConfig>,
    /// Compile a deliberate defect into the cycle loop (conformance-oracle
    /// self-test only — see [`Sabotage`]). `None` in every production
    /// configuration.
    pub sabotage: Option<Sabotage>,
    /// Worker threads for the sharded cycle engine. `None` or `Some(1)`
    /// selects the sequential path (today's exact code, no pool, no
    /// barriers). `Some(n)` splits the mesh into `n` contiguous router
    /// bands executed in parallel — bit-identical to the sequential
    /// engine at every thread count (see `crate::par`). Clamped to the
    /// router count; most useful on research-scale meshes (16×16, 32×32).
    pub threads: Option<usize>,
}

impl SimConfig {
    /// The paper's platform: 64 cores, 16 routers, 4 VCs × 4 slots, output
    /// retransmission buffers, mitigation on.
    pub fn paper() -> Self {
        Self {
            mesh: Mesh::paper(),
            vcs: 4,
            vc_depth: 4,
            retx_depth: 4,
            retx_scheme: RetxScheme::Output,
            qos: QosMode::None,
            mitigation: true,
            detector: DetectorConfig::default(),
            injection_full_threshold: 16,
            snapshot_interval: 1,
            blocked_threshold: 32,
            trace_packet: None,
            retry_budget: None,
            check_invariants_every: None,
            watchdog: None,
            trace: None,
            sabotage: None,
            threads: None,
        }
    }

    /// The paper platform hardened with the resilience layer: watchdog
    /// armed, bounded retransmission, and periodic invariant audits. This
    /// is what fault-injection campaigns run under.
    pub fn paper_resilient() -> Self {
        Self {
            retry_budget: Some(32),
            check_invariants_every: Some(64),
            watchdog: Some(WatchdogConfig::default()),
            ..Self::paper()
        }
    }

    /// Same platform with the mitigation path disabled.
    pub fn paper_unprotected() -> Self {
        Self {
            mitigation: false,
            ..Self::paper()
        }
    }

    /// Ports per router: 4 network directions + `concentration` locals.
    pub fn ports(&self) -> usize {
        4 + self.mesh.concentration() as usize
    }

    /// The TDM domain a VC belongs to (VCs are striped across domains).
    pub fn domain_of_vc(&self, vc: u8) -> u8 {
        match self.qos {
            QosMode::None => 0,
            QosMode::Tdm { domains } => vc % domains,
        }
    }

    /// Whether `vc` may use the switch/link during `cycle`.
    pub fn tdm_slot_open(&self, vc: u8, cycle: u64) -> bool {
        match self.qos {
            QosMode::None => true,
            QosMode::Tdm { domains } => (cycle % domains as u64) as u8 == self.domain_of_vc(vc),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_evaluation_platform() {
        let c = SimConfig::paper();
        assert_eq!(c.mesh.routers(), 16);
        assert_eq!(c.mesh.cores(), 64);
        assert_eq!(c.vcs, 4);
        assert_eq!(c.vc_depth, 4);
        assert_eq!(c.retx_scheme, RetxScheme::Output);
        assert_eq!(c.ports(), 8);
        assert!(c.mitigation);
        assert!(!SimConfig::paper_unprotected().mitigation);
        // The resilience features are strictly opt-in: the paper config
        // must reproduce the unbounded-retransmission DoS untouched.
        assert_eq!(c.retry_budget, None);
        assert_eq!(c.check_invariants_every, None);
        assert_eq!(c.watchdog, None);
    }

    #[test]
    fn resilient_config_arms_every_guard() {
        let c = SimConfig::paper_resilient();
        assert!(c.retry_budget.is_some());
        assert!(c.check_invariants_every.is_some());
        assert!(c.watchdog.is_some());
        // Everything else stays the paper platform.
        assert_eq!(c.vcs, SimConfig::paper().vcs);
        assert_eq!(c.retx_scheme, SimConfig::paper().retx_scheme);
    }

    #[test]
    fn tdm_partitions_vcs_and_slots() {
        let mut c = SimConfig::paper();
        c.qos = QosMode::Tdm { domains: 2 };
        assert_eq!(c.domain_of_vc(0), 0);
        assert_eq!(c.domain_of_vc(1), 1);
        assert_eq!(c.domain_of_vc(2), 0);
        assert_eq!(c.domain_of_vc(3), 1);
        // Even cycles serve domain 0, odd cycles domain 1.
        assert!(c.tdm_slot_open(0, 0));
        assert!(!c.tdm_slot_open(0, 1));
        assert!(c.tdm_slot_open(1, 1));
        assert!(!c.tdm_slot_open(1, 0));
    }

    #[test]
    fn no_qos_opens_every_slot() {
        let c = SimConfig::paper();
        for vc in 0..4 {
            for cycle in 0..4 {
                assert!(c.tdm_slot_open(vc, cycle));
            }
        }
    }
}
