//! Deadlock/livelock watchdog.
//!
//! A trojan-driven NACK storm does not crash the simulator — it starves
//! it: flits sit in retransmission buffers forever, back-pressure fills
//! every upstream buffer, and `run_to_quiescence` spins until its cycle
//! budget runs out with nothing to show but a timeout. The watchdog turns
//! that silent spin into a structured [`StallReport`] the caller can act
//! on (quarantine the link, reroute, or abort the run with a diagnosis).
//!
//! Three detectors, most specific first:
//!
//! 1. **Retransmission livelock** — one entry has been driven onto the
//!    same link [`WatchdogConfig::retx_attempt_limit`] times without an
//!    ACK. This is the signature of a permanent fault or an armed trojan
//!    that obfuscation has not (yet) defeated.
//! 2. **Credit stall** — an output port holds work whose oldest entry has
//!    aged past [`WatchdogConfig::credit_stall_cycles`] while the port has
//!    made no delivery progress: classic credit back-pressure, the
//!    tree-saturation stage of the paper's DoS.
//! 3. **Global deadlock** — flits are resident somewhere in the network
//!    but nothing has been ejected for
//!    [`WatchdogConfig::global_stall_cycles`]. The chip is dead even if no
//!    single port can be blamed.

use crate::telemetry::EngineHeartbeat;
use noc_types::{Direction, FlitId, NodeId};

/// Thresholds for the three stall detectors. The defaults are sized for
/// the paper's 4×4 mesh: the longest healthy path is 6 hops × 5 stages
/// plus queueing, so hundreds of cycles without progress is pathological.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Trip when no flit has been ejected anywhere for this many cycles
    /// while flits are resident in the network.
    pub global_stall_cycles: u64,
    /// Trip when an output port's oldest retransmission entry has waited
    /// this long with no delivery progress on the port.
    pub credit_stall_cycles: u64,
    /// Trip when one retransmission entry has been launched this many
    /// times without being acknowledged.
    pub retx_attempt_limit: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            global_stall_cycles: 1024,
            credit_stall_cycles: 512,
            retx_attempt_limit: 64,
        }
    }
}

/// What kind of stall the watchdog identified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// Flits are in flight but nothing has been delivered network-wide.
    GlobalDeadlock {
        /// Cycles since the last ejection anywhere.
        idle_cycles: u64,
    },
    /// One output port has aged work and no delivery progress.
    CreditStall {
        /// Router owning the stalled output.
        router: NodeId,
        /// Direction of the stalled output port.
        dir: Direction,
        /// Age (cycles) of the oldest entry still waiting.
        oldest_age: u64,
    },
    /// One flit keeps being retransmitted on the same link without an ACK.
    RetxLivelock {
        /// Router owning the livelocked output.
        router: NodeId,
        /// Direction of the livelocked output port.
        dir: Direction,
        /// The flit being replayed.
        flit: FlitId,
        /// Launch attempts so far.
        attempts: u32,
    },
}

impl StallKind {
    /// Stable machine-readable label (shared with the trace schema).
    pub fn label(&self) -> &'static str {
        match self {
            StallKind::GlobalDeadlock { .. } => "global_deadlock",
            StallKind::CreditStall { .. } => "credit_stall",
            StallKind::RetxLivelock { .. } => "retx_livelock",
        }
    }
}

/// A structured stall diagnosis, produced instead of spinning forever.
///
/// Equality deliberately ignores [`StallReport::heartbeat`]: the
/// heartbeat is wall-clock telemetry (per-phase times, shard imbalance,
/// alert history), not simulation state, so traced/untraced and
/// checkpointed/uninterrupted runs compare equal regardless of whether
/// telemetry was armed. The checkpoint codec skips it for the same
/// reason.
#[derive(Debug, Clone, Copy)]
pub struct StallReport {
    /// Cycle the watchdog tripped.
    pub cycle: u64,
    /// Which detector fired, with its evidence.
    pub kind: StallKind,
    /// Flits resident in routers when the watchdog tripped.
    pub resident_flits: usize,
    /// Flits still waiting in injection queues.
    pub queued_flits: usize,
    /// Flits delivered before the stall.
    pub delivered_flits: u64,
    /// The engine-health heartbeat at trip time, when telemetry was
    /// armed — makes a stall post-mortem self-contained.
    pub heartbeat: Option<EngineHeartbeat>,
}

impl PartialEq for StallReport {
    fn eq(&self, other: &Self) -> bool {
        self.cycle == other.cycle
            && self.kind == other.kind
            && self.resident_flits == other.resident_flits
            && self.queued_flits == other.queued_flits
            && self.delivered_flits == other.delivered_flits
    }
}

impl Eq for StallReport {}

impl StallReport {
    /// The router/direction to blame, when the stall names one. A global
    /// deadlock has no single culprit and returns `None`.
    pub fn culprit(&self) -> Option<(NodeId, Direction)> {
        match self.kind {
            StallKind::GlobalDeadlock { .. } => None,
            StallKind::CreditStall { router, dir, .. }
            | StallKind::RetxLivelock { router, dir, .. } => Some((router, dir)),
        }
    }
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            StallKind::GlobalDeadlock { idle_cycles } => write!(
                f,
                "global deadlock at cycle {}: no ejection for {} cycles, \
                 {} flits resident, {} queued",
                self.cycle, idle_cycles, self.resident_flits, self.queued_flits
            ),
            StallKind::CreditStall {
                router,
                dir,
                oldest_age,
            } => write!(
                f,
                "credit stall at cycle {}: router {} output {:?} has held \
                 work for {} cycles without progress",
                self.cycle, router.0, dir, oldest_age
            ),
            StallKind::RetxLivelock {
                router,
                dir,
                flit,
                attempts,
            } => write!(
                f,
                "retransmission livelock at cycle {}: flit {} on router {} \
                 output {:?} launched {} times without an ACK",
                self.cycle, flit.0, router.0, dir, attempts
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_thresholds_are_ordered() {
        let c = WatchdogConfig::default();
        // The per-port detector should fire before the global one so the
        // report can name a culprit.
        assert!(c.credit_stall_cycles < c.global_stall_cycles);
        assert!(c.retx_attempt_limit > 0);
    }

    #[test]
    fn culprit_identifies_the_blamed_port() {
        let base = StallReport {
            cycle: 100,
            kind: StallKind::GlobalDeadlock { idle_cycles: 50 },
            resident_flits: 3,
            queued_flits: 0,
            delivered_flits: 10,
            heartbeat: None,
        };
        assert_eq!(base.culprit(), None);
        let named = StallReport {
            kind: StallKind::RetxLivelock {
                router: NodeId(5),
                dir: Direction::East,
                flit: FlitId(9),
                attempts: 64,
            },
            ..base
        };
        assert_eq!(named.culprit(), Some((NodeId(5), Direction::East)));
    }

    #[test]
    fn reports_render_human_readable() {
        let r = StallReport {
            cycle: 2000,
            kind: StallKind::CreditStall {
                router: NodeId(3),
                dir: Direction::North,
                oldest_age: 700,
            },
            resident_flits: 40,
            queued_flits: 12,
            delivered_flits: 100,
            heartbeat: None,
        };
        let s = r.to_string();
        assert!(s.contains("credit stall"));
        assert!(s.contains("router 3"));
    }

    #[test]
    fn equality_ignores_the_telemetry_heartbeat() {
        let base = StallReport {
            cycle: 100,
            kind: StallKind::GlobalDeadlock { idle_cycles: 50 },
            resident_flits: 3,
            queued_flits: 0,
            delivered_flits: 10,
            heartbeat: None,
        };
        let with_hb = StallReport {
            heartbeat: Some(EngineHeartbeat {
                cycle: 100,
                phase_ns: [1; crate::telemetry::PHASE_COUNT],
                group_imbalance_permille: [1000; crate::telemetry::GROUP_COUNT],
                alerts_fired: 3,
                last_alert: None,
            }),
            ..base
        };
        assert_eq!(base, with_hb, "heartbeat is side-band, not state");
    }
}
