//! Typed simulation errors.
//!
//! The guarded execution APIs ([`crate::Simulator::try_step`],
//! [`crate::Simulator::run_guarded`],
//! [`crate::Simulator::run_to_quiescence_guarded`]) return these instead
//! of panicking or silently spinning, so campaign drivers can distinguish
//! "the network stalled" from "the simulator's own state is corrupt" from
//! "the requested degradation is impossible".

use crate::invariants::Violation;
use crate::watchdog::StallReport;
use noc_types::LinkId;

/// Why a guarded simulation run could not continue.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The watchdog diagnosed a deadlock/livelock. The simulator remains
    /// usable: callers typically quarantine the culprit link and resume.
    Stalled(Box<StallReport>),
    /// Quarantining/killing links left some router pair unroutable; the
    /// mesh cannot degrade gracefully past this point.
    MeshDisconnected {
        /// Cycle the fatal quarantine was attempted.
        cycle: u64,
        /// The full dead-link set that disconnected the mesh.
        dead: Vec<LinkId>,
    },
    /// Runtime invariant checking found protocol violations — the
    /// simulator's micro-architectural state is corrupt and results can
    /// no longer be trusted.
    InvariantViolations {
        /// Cycle of the failing audit.
        cycle: u64,
        /// Every violation the audit found.
        violations: Vec<Violation>,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Stalled(report) => write!(f, "{report}"),
            SimError::MeshDisconnected { cycle, dead } => write!(
                f,
                "mesh disconnected at cycle {cycle}: {} dead links leave \
                 some pair unroutable",
                dead.len()
            ),
            SimError::InvariantViolations { cycle, violations } => write!(
                f,
                "{} invariant violation(s) at cycle {cycle}: {}",
                violations.len(),
                violations
                    .first()
                    .map(|v| v.what.as_str())
                    .unwrap_or("<none>")
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watchdog::StallKind;

    #[test]
    fn errors_render_their_diagnosis() {
        let e = SimError::Stalled(Box::new(StallReport {
            cycle: 500,
            kind: StallKind::GlobalDeadlock { idle_cycles: 200 },
            resident_flits: 9,
            queued_flits: 4,
            delivered_flits: 77,
            heartbeat: None,
        }));
        assert!(e.to_string().contains("global deadlock"));

        let e = SimError::MeshDisconnected {
            cycle: 10,
            dead: vec![LinkId(1), LinkId(2)],
        };
        assert!(e.to_string().contains("2 dead links"));

        let e = SimError::InvariantViolations {
            cycle: 3,
            violations: vec![Violation {
                router: 1,
                what: "credits exceed depth".into(),
            }],
        };
        assert!(e.to_string().contains("credits exceed depth"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::MeshDisconnected {
            cycle: 0,
            dead: vec![],
        });
        assert!(!e.to_string().is_empty());
    }
}
