//! Property tests for the retransmission buffer under both organisations
//! ([`RetxScheme::Output`] shared pool and [`RetxScheme::PerVc`] per-VC
//! buffers): random push/launch/ACK/NACK interleavings must never
//! overflow the slot budget, never silently lose a buffered flit, and
//! only ever consume retry attempts monotonically.

use noc_sim::config::RetxScheme;
use noc_sim::output::{OutputUnit, SlotState};
use noc_types::{Flit, FlitId, FlitKind, Header, NodeId, PacketId, VcId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

const VCS: u8 = 4;
const CAPACITY: usize = 2;

fn flit(n: u64, vc: VcId) -> Flit {
    let h = Header {
        src: NodeId(0),
        dest: NodeId((n % 16) as u16),
        vc,
        mem_addr: n as u32,
        thread: 0,
        len: 1,
    };
    Flit::head(FlitId(n), PacketId(n), FlitKind::Single, h)
}

/// Ids of entries currently awaiting an ACK (NACK/ACK candidates).
fn awaiting(out: &OutputUnit) -> Vec<u64> {
    out.entries
        .iter()
        .filter(|e| e.state == SlotState::AwaitAck)
        .map(|e| e.flit.id.0)
        .collect()
}

fn drive(scheme: RetxScheme, seed: u64, steps: usize) -> Result<(), TestCaseError> {
    let mut out = OutputUnit::new(VCS, 4, CAPACITY, scheme);
    let mut rng = StdRng::seed_from_u64(seed);
    // Model: flit id → highest attempt count observed so far.
    let mut live: HashMap<u64, u32> = HashMap::new();
    let mut next_id = 1u64;
    for cycle in 1..=steps as u64 {
        match rng.gen_range(0u8..4) {
            // Push: admission honours the slot budget, never drops.
            0 => {
                let vc = VcId(rng.gen_range(0u8..VCS));
                if out.has_slot(vc) {
                    out.push(flit(next_id, vc), vc, cycle);
                    live.insert(next_id, 0);
                    next_id += 1;
                } else {
                    // A full buffer refuses admission (back-pressure),
                    // it does not overwrite or drop.
                    let in_vc = out.entries.iter().filter(|e| e.vc == vc).count();
                    prop_assert!(match scheme {
                        RetxScheme::Output => out.occupancy() == out.total_capacity(),
                        RetxScheme::PerVc => in_vc == CAPACITY,
                    });
                }
            }
            // Launch: one attempt is consumed, exactly.
            1 => {
                if let Some(idx) = out.select_send(|_| true) {
                    let before = out.entries[idx].attempts;
                    out.mark_sent(idx, cycle);
                    prop_assert_eq!(out.entries[idx].attempts, before + 1);
                }
            }
            // ACK: the delivered entry existed, and leaves exactly once.
            2 => {
                let ids = awaiting(&out);
                if !ids.is_empty() {
                    let id = ids[rng.gen_range(0..ids.len())];
                    prop_assert!(out.ack(FlitId(id), None, cycle).is_some());
                    live.remove(&id);
                }
            }
            // NACK: the entry stays buffered and goes back to NeedSend
            // without its attempt count moving backwards.
            _ => {
                let ids = awaiting(&out);
                if !ids.is_empty() {
                    let id = ids[rng.gen_range(0..ids.len())];
                    out.nack(FlitId(id), None);
                    let e = out.entries.iter().find(|e| e.flit.id.0 == id);
                    prop_assert!(e.is_some(), "a NACKed flit must stay buffered");
                    prop_assert_eq!(e.unwrap().state, SlotState::NeedSend);
                }
            }
        }
        // Global properties, after every operation.
        prop_assert!(out.occupancy() <= out.total_capacity());
        prop_assert_eq!(
            out.occupancy(),
            live.len(),
            "buffered set must match the model: no silent drop, no duplicate"
        );
        for e in &out.entries {
            let seen = live
                .get_mut(&e.flit.id.0)
                .expect("buffered flit unknown to the model");
            prop_assert!(
                e.attempts >= *seen,
                "retry budget must be consumed monotonically"
            );
            *seen = e.attempts;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn output_scheme_never_leaks_overflows_or_rewinds(
        seed in any::<u64>(),
        steps in 32usize..160,
    ) {
        drive(RetxScheme::Output, seed, steps)?;
    }

    #[test]
    fn per_vc_scheme_never_leaks_overflows_or_rewinds(
        seed in any::<u64>(),
        steps in 32usize..160,
    ) {
        drive(RetxScheme::PerVc, seed, steps)?;
    }
}
