//! Lockstep-equivalence property tests for the bitset wavefront
//! allocation datapath (DESIGN.md §18): across random seeds,
//! retransmission schemes, topologies, trojan arming, and thread counts
//! {1, 4}, the mask-parallel VA/SA/RC stages must produce bit-identical
//! executions. Two layers assert this:
//!
//! * **grant-for-grant, per cycle** — inside the router, every
//!   lane-derived request mask is cross-checked against the retained
//!   struct-walking reference predicates (`reference_rc_mask`,
//!   `reference_va_eligible`, `reference_va_req`, `reference_sa_req`,
//!   compiled behind `cfg(any(test, debug_assertions))`) by
//!   `debug_assert_eq!` at the top of each stage. Test builds keep
//!   debug assertions on, so *every cycle these tests drive* runs the
//!   old predicate walk in parallel with the bitset datapath and aborts
//!   on the first divergent requester bit — before it could even reach
//!   the arbiter;
//! * **fingerprint-identical, end to end** — a threads=1 run and a
//!   threads=4 run of the same scenario must finish with byte-equal
//!   snapshot payloads (every FIFO, credit counter, arbiter pointer,
//!   and RNG cursor) and identical stats.

use noc_sim::config::RetxScheme;
use noc_sim::routing::xy_direction;
use noc_sim::snapshot::{put_u64, take_u64};
use noc_sim::{LinkFaults, SimConfig, Simulator, TrafficSource};
use noc_trojan::{TargetSpec, TaspConfig, TaspHt};
use noc_types::{Direction, Mesh, NodeId, Packet, PacketId, VcId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random injector biased toward the hotspot behind the trojan
/// link, so the allocation wavefront stays saturated (the regime the
/// bitset datapath rewrote) instead of trickling single flits.
struct RandSource {
    rng: StdRng,
    next_id: u64,
    until: u64,
}

impl RandSource {
    fn new(seed: u64, until: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            next_id: 1,
            until,
        }
    }
}

impl TrafficSource for RandSource {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        if cycle >= self.until {
            return;
        }
        if self.rng.gen_range(0u8..10) < 4 {
            let src = NodeId(self.rng.gen_range(0u16..16));
            let dest = if self.rng.gen_bool(0.5) {
                NodeId(9)
            } else {
                NodeId(self.rng.gen_range(0u16..16))
            };
            if src != dest {
                let id = self.next_id;
                self.next_id += 1;
                out.push(Packet::new(
                    PacketId(id),
                    src,
                    dest,
                    VcId((id % 2) as u8),
                    (id * 64) as u32,
                    (id % 4) as u8,
                    1 + (id % 4) as u8,
                    cycle,
                ));
            }
        }
    }

    fn done(&self) -> bool {
        false
    }

    fn save_cursor(&self, out: &mut Vec<u8>) {
        for s in self.rng.state() {
            put_u64(out, s);
        }
        put_u64(out, self.next_id);
        put_u64(out, self.until);
    }

    fn load_cursor(&mut self, input: &mut &[u8]) {
        let (Some(a), Some(b), Some(c), Some(d)) = (
            take_u64(input),
            take_u64(input),
            take_u64(input),
            take_u64(input),
        ) else {
            return;
        };
        let (Some(next_id), Some(until)) = (take_u64(input), take_u64(input)) else {
            return;
        };
        self.rng = StdRng::from_state([a, b, c, d]);
        self.next_id = next_id;
        self.until = until;
    }
}

/// The topology axis: 0 = the paper mesh, 1 = its torus closure, 2 = a
/// fault-degraded mesh. The degraded removal set stays clear of the
/// (5 → 9) hot link the trojan pins.
fn axis_mesh(topo: u8) -> Mesh {
    match topo {
        1 => Mesh::new_torus(4, 4, 1),
        2 => Mesh::new_degraded(
            4,
            4,
            1,
            &[(NodeId(5), Direction::East), (NodeId(9), Direction::North)],
        ),
        _ => Mesh::paper(),
    }
}

fn build_sim(scheme: RetxScheme, threads: usize, trojan: bool, topo: u8) -> Simulator {
    let mut cfg = if trojan {
        SimConfig::paper_unprotected()
    } else {
        SimConfig::paper()
    };
    cfg.mesh = axis_mesh(topo);
    cfg.retx_scheme = scheme;
    cfg.threads = Some(threads);
    let mut sim = Simulator::new(cfg);
    if trojan {
        let victim = NodeId(9);
        let dir = xy_direction(sim.mesh(), NodeId(5), victim);
        let hot = sim
            .mesh()
            .link_out(NodeId(5), dir)
            .expect("adjacent routers share a link");
        let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest((victim.0 & 0xF) as u8)));
        let faults = std::mem::replace(sim.link_faults_mut(hot), LinkFaults::healthy(hot.0 as u64));
        *sim.link_faults_mut(hot) = faults.with_trojan(ht);
        sim.arm_trojans(true);
    }
    sim
}

/// Run one scenario at the given thread count and return its end-state
/// snapshot payload plus formatted stats.
fn run_one(
    seed: u64,
    scheme: RetxScheme,
    threads: usize,
    trojan: bool,
    topo: u8,
    cycles: u64,
    skip: bool,
) -> (Vec<u8>, String) {
    let mut sim = build_sim(scheme, threads, trojan, topo);
    sim.set_fast_forward(skip);
    let mut src = RandSource::new(seed, cycles * 2 / 3);
    sim.run(cycles, &mut src);
    let payload = sim.snapshot().payload().to_vec();
    (payload, format!("{:?}", sim.stats()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Threads=1 and threads=4 executions of the same scenario are
    /// fingerprint-identical, with the per-cycle reference-predicate
    /// oracle live in both (debug assertions are on in test builds).
    #[test]
    fn wavefront_runs_are_lockstep_equivalent(
        seed in any::<u64>(),
        scheme_pervc in any::<bool>(),
        trojan in any::<bool>(),
        topo in 0u8..3,
        cycles in 60u64..220,
        skip in any::<bool>(),
    ) {
        let scheme = if scheme_pervc { RetxScheme::PerVc } else { RetxScheme::Output };
        let (p1, s1) = run_one(seed, scheme, 1, trojan, topo, cycles, skip);
        let (p4, s4) = run_one(seed, scheme, 4, trojan, topo, cycles, skip);
        prop_assert_eq!(
            p1, p4,
            "threads=1 vs threads=4 snapshot payloads diverged \
             (scheme {:?}, trojan {}, topo {}, cycles {}, skip {})",
            scheme, trojan, topo, cycles, skip
        );
        prop_assert_eq!(s1, s4);
    }

    /// Fast-forward on and off land in identical end states at both
    /// thread counts: a skipped window must be provably invisible to
    /// the wavefront datapath's lane masks and caches.
    #[test]
    fn skip_windows_are_invisible_to_the_wavefront(
        seed in any::<u64>(),
        scheme_pervc in any::<bool>(),
        topo in 0u8..3,
        cycles in 60u64..220,
        four_threads in any::<bool>(),
    ) {
        let scheme = if scheme_pervc { RetxScheme::PerVc } else { RetxScheme::Output };
        let threads = if four_threads { 4 } else { 1 };
        let (p_on, s_on) = run_one(seed, scheme, threads, true, topo, cycles, true);
        let (p_off, s_off) = run_one(seed, scheme, threads, true, topo, cycles, false);
        prop_assert_eq!(
            p_on, p_off,
            "skip on vs off diverged (scheme {:?}, t={}, topo {}, cycles {})",
            scheme, threads, topo, cycles
        );
        prop_assert_eq!(s_on, s_off);
    }
}
