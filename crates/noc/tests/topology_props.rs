//! Property tests for the topology layer: on random connected
//! topologies every deterministic route terminates at its destination
//! without ever touching a removed adjacency, and the torus dateline VC
//! scheme leaves the channel-dependency graph acyclic (the deadlock-
//! freedom argument of DESIGN.md §17, checked exhaustively per shape).

use noc_sim::routing::{route_path, Routing, VcClass};
use noc_types::{Direction, Mesh, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Sample a random connected degraded mesh: random dimensions, then up
/// to four adjacency removals accepted greedily while the graph stays
/// connected.
fn random_degraded(rng: &mut StdRng) -> (Mesh, Vec<(NodeId, Direction)>) {
    let w = rng.gen_range(2u8..=5);
    let h = rng.gen_range(2u8..=5);
    let base = Mesh::new(w, h, 1);
    let mut removed: Vec<(NodeId, Direction)> = Vec::new();
    for _ in 0..rng.gen_range(0usize..=4) {
        let node = NodeId(rng.gen_range(0..base.routers()) as u16);
        let dir = if rng.gen_bool(0.5) {
            Direction::East
        } else {
            Direction::North
        };
        if base.neighbor(node, dir).is_none() {
            continue;
        }
        let mut cand = removed.clone();
        cand.push((node, dir));
        if Mesh::new_degraded(w, h, 1, &cand).connected() {
            removed = cand;
        }
    }
    (Mesh::new_degraded(w, h, 1, &removed), removed)
}

/// Walk every (src, dest) route and check it reaches the destination in
/// at most `routers` hops without crossing a removed adjacency.
fn check_routes_terminate(
    mesh: &Mesh,
    removed: &[(NodeId, Direction)],
) -> Result<(), TestCaseError> {
    let routing = Routing::for_mesh(mesh);
    let banned: HashSet<(u16, usize)> = removed
        .iter()
        .flat_map(|&(n, d)| {
            let peer = Mesh::new(mesh.width(), mesh.height(), 1)
                .neighbor(n, d)
                .expect("removed adjacency exists in the base mesh");
            [(n.0, d.index()), (peer.0, d.opposite().index())]
        })
        .collect();
    let n = mesh.routers() as u16;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let path = route_path(mesh, &routing, NodeId(s), NodeId(d));
            prop_assert!(
                path.len() <= mesh.routers(),
                "{s}->{d} took {} hops",
                path.len()
            );
            let mut at = NodeId(s);
            for l in &path {
                let (src, dir) = mesh.link_source(*l);
                prop_assert_eq!(src, at, "path is contiguous");
                prop_assert!(
                    !banned.contains(&(src.0, dir.index())),
                    "{s}->{d} crossed removed adjacency ({}, {dir:?})",
                    src.0
                );
                at = mesh.link_dest(*l);
            }
            prop_assert_eq!(at, NodeId(d), "route terminates at the destination");
        }
    }
    Ok(())
}

/// Build the channel-dependency graph a torus induces — one vertex per
/// (link, dateline class), one edge per consecutive hop pair on any
/// deterministic route — and verify it is acyclic by iterative DFS.
fn check_torus_cdg_acyclic(w: u8, h: u8) -> Result<(), TestCaseError> {
    let t = Mesh::new_torus(w, h, 1);
    prop_assert_eq!(*t.topology(), Topology::Torus);
    let routing = Routing::for_mesh(&t);
    let channels = t.links() * 2;
    let mut edges: Vec<HashSet<usize>> = vec![HashSet::new(); channels];
    let n = t.routers() as u16;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let path = route_path(&t, &routing, NodeId(s), NodeId(d));
            let mut at = NodeId(s);
            let mut prev: Option<usize> = None;
            for l in &path {
                let class = routing.vc_class(at, NodeId(d));
                prop_assert!(class != VcClass::Any, "torus hops carry a class");
                let ch = l.index() * 2 + usize::from(class == VcClass::High);
                if let Some(p) = prev {
                    edges[p].insert(ch);
                }
                prev = Some(ch);
                at = t.link_dest(*l);
            }
        }
    }
    // Colors: 0 = unvisited, 1 = on the stack, 2 = done.
    let mut color = vec![0u8; channels];
    for start in 0..channels {
        if color[start] != 0 {
            continue;
        }
        // Iterative DFS: (node, next-neighbor cursor).
        let mut stack: Vec<(usize, Vec<usize>)> = Vec::new();
        color[start] = 1;
        stack.push((start, edges[start].iter().copied().collect()));
        while let Some((node, succ)) = stack.last_mut() {
            match succ.pop() {
                Some(next) => {
                    prop_assert!(
                        color[next] != 1,
                        "channel-dependency cycle through link {} on {w}x{h} torus",
                        next / 2
                    );
                    if color[next] == 0 {
                        color[next] = 1;
                        let succs = edges[next].iter().copied().collect();
                        stack.push((next, succs));
                    }
                }
                None => {
                    color[*node] = 2;
                    stack.pop();
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn degraded_routes_terminate_and_avoid_removed_links(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mesh, removed) = random_degraded(&mut rng);
        check_routes_terminate(&mesh, &removed)?;
    }

    #[test]
    fn torus_routes_terminate_on_random_shapes(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = rng.gen_range(2u8..=6);
        let h = rng.gen_range(2u8..=6);
        let t = Mesh::new_torus(w, h, 1);
        check_routes_terminate(&t, &[])?;
    }
}

#[test]
fn torus_channel_dependency_graph_is_acyclic() {
    // Exhaustive over the shapes the rest of the suite exercises,
    // including non-square and minimum-size rings.
    for (w, h) in [(2u8, 2u8), (2, 4), (3, 3), (4, 4), (3, 5), (5, 4), (8, 8)] {
        check_torus_cdg_acyclic(w, h).unwrap();
    }
}
