//! Integration coverage for the structured-tracing layer: schema
//! round-trips, ring-buffer bounds, the attack-forensics timeline of a
//! mitigated trojan run, and the zero-perturbation guarantee.

use noc_mitigation::FaultClass;
use noc_sim::sim::TrafficSource;
use noc_sim::trace::StallClass;
use noc_sim::{Record, SimConfig, Simulator, TraceConfig, TraceKind, TraceRecorder};
use noc_types::{Direction, FlitId, LinkId, NodeId, Packet, PacketId, VcId};

/// Inject a fixed list of packets at their `created_at` cycles.
struct ListSource {
    packets: Vec<Packet>,
}

impl TrafficSource for ListSource {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        let mut i = 0;
        while i < self.packets.len() {
            if self.packets[i].created_at == cycle {
                out.push(self.packets.remove(i));
            } else {
                i += 1;
            }
        }
    }
    fn done(&self) -> bool {
        self.packets.is_empty()
    }
}

fn pkt(id: u64, cycle: u64, src: u16, dest: u16, len: u8) -> Packet {
    Packet::new(
        PacketId((id << 32) | cycle),
        NodeId(src),
        NodeId(dest),
        VcId(0),
        0,
        0,
        len,
        cycle,
    )
}

/// Mount a destination-hunting TASP trojan on the XY first-hop link
/// 0 → `dest` and return that link.
fn mount_dest_trojan(sim: &mut Simulator, dest: u8) -> LinkId {
    use noc_sim::fault::LinkFaults;
    use noc_trojan::{TargetSpec, TaspConfig, TaspHt};
    let link = sim.mesh().link_out(NodeId(0), Direction::East).unwrap();
    let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(dest)));
    let faults = std::mem::replace(sim.link_faults_mut(link), LinkFaults::healthy(0));
    *sim.link_faults_mut(link) = faults.with_trojan(ht);
    link
}

fn trojan_packets() -> Vec<Packet> {
    let mut packets: Vec<Packet> = (0..6u64).map(|i| pkt(i + 1, i * 3, 0, 1, 4)).collect();
    packets
        .iter_mut()
        .for_each(|p| p.vc = VcId((p.created_at % 4) as u8));
    packets
}

/// Every `TraceKind` variant survives a JSONL serialize → parse cycle
/// byte-identically (the schema the `trace_validate` binary enforces).
#[test]
fn jsonl_schema_round_trips_every_variant() {
    use noc_mitigation::LobPlan;
    let plan = LobPlan::LADDER[2];
    let kinds = [
        TraceKind::FlitInjected {
            flit: FlitId(1),
            packet: PacketId(2),
            core: 3,
        },
        TraceKind::FlitLaunched {
            flit: FlitId(1),
            packet: PacketId(2),
            link: LinkId(4),
            attempt: 2,
            obf: Some(plan),
        },
        TraceKind::FlitLaunched {
            flit: FlitId(1),
            packet: PacketId(2),
            link: LinkId(4),
            attempt: 1,
            obf: None,
        },
        TraceKind::EccCorrected {
            flit: FlitId(1),
            packet: PacketId(2),
            link: LinkId(4),
        },
        TraceKind::EccDetected {
            flit: FlitId(1),
            packet: PacketId(2),
            link: LinkId(4),
        },
        TraceKind::FlitNacked {
            flit: FlitId(1),
            packet: PacketId(2),
            link: LinkId(4),
            lob_requested: true,
        },
        TraceKind::FlitAccepted {
            flit: FlitId(1),
            packet: PacketId(2),
            link: LinkId(4),
            obfuscated: false,
        },
        TraceKind::FlitEjected {
            flit: FlitId(1),
            packet: PacketId(2),
            router: NodeId(5),
        },
        TraceKind::PacketDropped {
            packet: PacketId(2),
            link: LinkId(4),
        },
        TraceKind::LinkClassified {
            link: LinkId(4),
            class: FaultClass::HardwareTrojan,
        },
        TraceKind::LobSelected {
            flit: FlitId(1),
            packet: PacketId(2),
            link: LinkId(4),
            plan,
            attempt: 1,
        },
        TraceKind::LobEscalated {
            flit: FlitId(1),
            link: LinkId(4),
            attempts: 9,
        },
        TraceKind::BistScan {
            link: LinkId(4),
            passed: true,
        },
        TraceKind::WatchdogTripped {
            class: StallClass::CreditStall,
            router: Some(NodeId(7)),
            dir: Some(Direction::North),
        },
        TraceKind::WatchdogTripped {
            class: StallClass::GlobalDeadlock,
            router: None,
            dir: None,
        },
        TraceKind::LinkQuarantined {
            link: LinkId(4),
            dropped_flits: 12,
            dropped_packets: 3,
        },
    ];
    for (i, kind) in kinds.into_iter().enumerate() {
        let rec = Record {
            cycle: 100 + i as u64,
            kind,
        };
        let line = rec.to_jsonl();
        let back =
            Record::from_jsonl(&line).unwrap_or_else(|| panic!("line must parse back: {line}"));
        assert_eq!(back, rec, "round-trip mismatch for {line}");
        assert_eq!(back.to_jsonl(), line, "canonical form for {line}");
    }
}

/// The bounded recorder keeps the newest events and counts evictions.
#[test]
fn ring_buffer_overflow_keeps_newest_and_counts_drops() {
    let mut rec = TraceRecorder::new(TraceConfig { capacity: 8 });
    for c in 0..20u64 {
        rec.record(
            c,
            TraceKind::BistScan {
                link: LinkId(0),
                passed: true,
            },
        );
    }
    assert_eq!(rec.len(), 8);
    assert_eq!(rec.emitted(), 20);
    assert_eq!(rec.dropped(), 12);
    let cycles: Vec<u64> = rec.records().map(|r| r.cycle).collect();
    assert_eq!(cycles, (12..20).collect::<Vec<_>>(), "newest 8 survive");
}

/// A mitigated trojan run's link timeline reconstructs the paper's
/// detect → classify → obfuscate sequence, in that order, and the
/// packet-forensics query reconstructs a victim's full journey.
#[test]
fn mitigated_trojan_timeline_shows_detect_classify_obfuscate() {
    let mut cfg = SimConfig::paper();
    cfg.trace = Some(TraceConfig::default());
    let mut sim = Simulator::new(cfg);
    let link = mount_dest_trojan(&mut sim, 1);
    sim.arm_trojans(true);
    let mut src = ListSource {
        packets: trojan_packets(),
    };
    assert!(sim.run_to_quiescence(4000, &mut src), "mitigation must win");

    let timeline = sim.link_timeline(link);
    assert!(!timeline.is_empty(), "infected link must have a timeline");
    let pos = |pred: &dyn Fn(&Record) -> bool| timeline.iter().position(pred);
    let detect = pos(&|r| matches!(r.kind, TraceKind::EccDetected { .. }))
        .expect("trojan faults must be detected");
    let classify = pos(&|r| matches!(r.kind, TraceKind::LinkClassified { .. }))
        .expect("the detector must classify the link");
    let select = pos(&|r| matches!(r.kind, TraceKind::LobSelected { .. }))
        .expect("L-Ob must select a method");
    let obf_launch = pos(&|r| matches!(r.kind, TraceKind::FlitLaunched { obf: Some(_), .. }))
        .expect("an obfuscated replay must launch");
    let obf_accept = pos(&|r| {
        matches!(
            r.kind,
            TraceKind::FlitAccepted {
                obfuscated: true,
                ..
            }
        )
    })
    .expect("the obfuscated replay must cross cleanly");
    assert!(
        detect < classify,
        "detect ({detect}) before classify ({classify})"
    );
    assert!(
        classify < obf_launch,
        "classify before the obfuscated launch"
    );
    assert!(
        select < obf_launch,
        "selection before the obfuscated launch"
    );
    assert!(obf_launch < obf_accept, "launch before acceptance");
    assert!(
        timeline.iter().any(|r| matches!(
            r.kind,
            TraceKind::LinkClassified {
                class: FaultClass::HardwareTrojan,
                ..
            }
        )),
        "sustained data-dependent faulting must classify as a hardware trojan"
    );

    // Packet forensics: a victim packet's history runs inject → launch →
    // fault → … → final ejection, each stage present and ordered.
    let victim = timeline
        .iter()
        .find_map(|r| matches!(r.kind, TraceKind::EccDetected { .. }).then(|| r.packet().unwrap()))
        .expect("a faulted packet exists");
    let history = sim.packet_history(victim);
    let hpos = |pred: &dyn Fn(&TraceKind) -> bool| history.iter().position(|r| pred(&r.kind));
    let injected = hpos(&|k| matches!(k, TraceKind::FlitInjected { .. })).expect("injection");
    let faulted = hpos(&|k| matches!(k, TraceKind::EccDetected { .. })).expect("fault");
    let retried = history
        .iter()
        .position(|r| matches!(r.kind, TraceKind::FlitLaunched { attempt, .. } if attempt > 1))
        .expect("a retransmission");
    let ejected = hpos(&|k| matches!(k, TraceKind::FlitEjected { .. })).expect("delivery");
    assert!(injected < faulted && faulted < retried && retried < ejected);
    // The history is cycle-ordered like the raw stream.
    assert!(history.windows(2).all(|w| w[0].cycle <= w[1].cycle));

    // The metrics registry agrees: the trojan link drew the most
    // retransmissions of any link in the mesh.
    let (hottest, retx) = sim.metrics().max_retx_link().unwrap();
    assert_eq!(hottest, link, "trojan link must lead the retx table");
    assert!(retx > 0);
    assert!(sim.metrics().link(link).ecc_uncorrectable.get() > 0);
    assert!(sim.metrics().link(link).lob_selections.get() > 0);
}

/// Tracing must not perturb the simulation: the same seeded run with and
/// without tracing reports bit-identical statistics.
#[test]
fn tracing_disabled_changes_no_stats() {
    let run = |trace: Option<TraceConfig>| {
        let mut cfg = SimConfig::paper();
        cfg.trace = trace;
        let mut sim = Simulator::new(cfg);
        mount_dest_trojan(&mut sim, 1);
        sim.arm_trojans(true);
        let mut src = ListSource {
            packets: trojan_packets(),
        };
        assert!(sim.run_to_quiescence(4000, &mut src));
        sim.stats().clone()
    };
    let traced = run(Some(TraceConfig::default()));
    let untraced = run(None);
    assert_eq!(traced, untraced, "tracing must be observation-only");
}

/// A traced run can stream its full history to a sink while the ring
/// keeps only the tail, and the JSONL dump validates line by line.
#[test]
fn sink_stream_is_schema_clean_and_complete() {
    let (tx, rx) = std::sync::mpsc::channel();
    let mut cfg = SimConfig::paper();
    cfg.trace = Some(TraceConfig { capacity: 16 });
    let mut sim = Simulator::new(cfg);
    mount_dest_trojan(&mut sim, 1);
    sim.arm_trojans(true);
    assert!(sim.set_trace_sink(Box::new(noc_sim::ChannelSink(tx))));
    let mut src = ListSource {
        packets: trojan_packets(),
    };
    assert!(sim.run_to_quiescence(4000, &mut src));
    let streamed: Vec<Record> = rx.try_iter().collect();
    let tracer = sim.tracer().unwrap();
    assert_eq!(streamed.len() as u64, tracer.emitted());
    assert!(tracer.dropped() > 0, "tiny ring must have wrapped");
    assert_eq!(tracer.len(), 16);
    for rec in &streamed {
        let line = rec.to_jsonl();
        assert_eq!(Record::from_jsonl(&line), Some(*rec), "{line}");
    }
}
