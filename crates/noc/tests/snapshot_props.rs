//! Property tests for crash-safe checkpoint/restore: for random traffic,
//! checkpoint cycles, retransmission schemes, thread counts, and armed
//! trojans, a snapshot → restore → run-K-cycles execution must be
//! bit-identical to the uninterrupted run — including mid-retransmission
//! and mid-quarantine states — and arbitrarily corrupted snapshot bytes
//! must decode to a typed error, never a panic or a silently wrong state.

use noc_sim::config::RetxScheme;
use noc_sim::routing::xy_direction;
use noc_sim::snapshot::{put_u64, take_u64};
use noc_sim::{LinkFaults, SimConfig, SimSnapshot, Simulator, SnapshotError, TrafficSource};
use noc_trojan::{TargetSpec, TaspConfig, TaspHt};
use noc_types::{Direction, Mesh, NodeId, Packet, PacketId, VcId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random injector with a serializable cursor, biased toward a
/// hotspot so an armed trojan on the hotspot's feeder link keeps the
/// retransmission machinery busy across the checkpoint boundary.
struct RandSource {
    rng: StdRng,
    polled: u64,
    next_id: u64,
    until: u64,
}

impl RandSource {
    fn new(seed: u64, until: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            polled: 0,
            next_id: 1,
            until,
        }
    }
}

impl TrafficSource for RandSource {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        self.polled += 1;
        if cycle >= self.until {
            return;
        }
        if self.rng.gen_range(0u8..10) < 3 {
            let src = NodeId(self.rng.gen_range(0u16..16));
            // Half the stream aims at the hotspot behind the trojan.
            let dest = if self.rng.gen_bool(0.5) {
                NodeId(9)
            } else {
                NodeId(self.rng.gen_range(0u16..16))
            };
            if src != dest {
                let id = self.next_id;
                self.next_id += 1;
                out.push(Packet::new(
                    PacketId(id),
                    src,
                    dest,
                    VcId((id % 2) as u8),
                    (id * 64) as u32,
                    (id % 4) as u8,
                    1 + (id % 4) as u8,
                    cycle,
                ));
            }
        }
    }

    fn done(&self) -> bool {
        false
    }

    fn save_cursor(&self, out: &mut Vec<u8>) {
        put_u64(out, self.polled);
        for s in self.rng.state() {
            put_u64(out, s);
        }
        put_u64(out, self.next_id);
        put_u64(out, self.until);
    }

    fn load_cursor(&mut self, input: &mut &[u8]) {
        let (Some(polled), Some(a), Some(b), Some(c), Some(d)) = (
            take_u64(input),
            take_u64(input),
            take_u64(input),
            take_u64(input),
            take_u64(input),
        ) else {
            return;
        };
        let (Some(next_id), Some(until)) = (take_u64(input), take_u64(input)) else {
            return;
        };
        self.polled = polled;
        self.rng = StdRng::from_state([a, b, c, d]);
        self.next_id = next_id;
        self.until = until;
    }
}

/// The topology axis: 0 = the paper mesh, 1 = its torus closure, 2 = a
/// fault-degraded mesh. The degraded removal set stays clear of the
/// (5, North) hot link the trojan and quarantine machinery pin.
fn axis_mesh(topo: u8) -> Mesh {
    match topo {
        1 => Mesh::new_torus(4, 4, 1),
        2 => Mesh::new_degraded(
            4,
            4,
            1,
            &[(NodeId(5), Direction::East), (NodeId(9), Direction::North)],
        ),
        _ => Mesh::paper(),
    }
}

fn build_sim(scheme: RetxScheme, threads: usize, trojan: bool, topo: u8) -> Simulator {
    let mut cfg = if trojan {
        SimConfig::paper_unprotected()
    } else {
        SimConfig::paper()
    };
    cfg.mesh = axis_mesh(topo);
    cfg.retx_scheme = scheme;
    cfg.threads = Some(threads);
    let mut sim = Simulator::new(cfg);
    if trojan {
        let victim = NodeId(9);
        let dir = xy_direction(sim.mesh(), NodeId(5), victim);
        let hot = sim
            .mesh()
            .link_out(NodeId(5), dir)
            .expect("adjacent routers share a link");
        let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest((victim.0 & 0xF) as u8)));
        let faults = std::mem::replace(sim.link_faults_mut(hot), LinkFaults::healthy(hot.0 as u64));
        *sim.link_faults_mut(hot) = faults.with_trojan(ht);
        sim.arm_trojans(true);
    }
    sim
}

/// Quarantine the trojan's link at the same pre-checkpoint cycle in both
/// executions, so the snapshot captures a mid-quarantine simulator.
fn quarantine_hot_link(sim: &mut Simulator) {
    let dir = xy_direction(sim.mesh(), NodeId(5), NodeId(9));
    let hot = sim
        .mesh()
        .link_out(NodeId(5), dir)
        .expect("adjacent routers share a link");
    // Both executions reach this call in identical states, so it either
    // succeeds in both or is a no-op in both.
    sim.quarantine_link(hot).ok();
}

#[allow(clippy::too_many_arguments)]
fn checkpoint_resume_matches(
    seed: u64,
    scheme: RetxScheme,
    threads: usize,
    trojan: bool,
    quarantine: bool,
    ckpt_at: u64,
    extra: u64,
    topo: u8,
) -> Result<(), TestCaseError> {
    let inject_until = ckpt_at + extra / 2;

    // Uninterrupted reference.
    let mut reference = build_sim(scheme, threads, trojan, topo);
    let mut ref_src = RandSource::new(seed, inject_until);
    reference.run(ckpt_at, &mut ref_src);
    if quarantine {
        quarantine_hot_link(&mut reference);
    }
    reference.run(extra, &mut ref_src);

    // Checkpointed twin: identical up to `ckpt_at`, then serialized
    // through bytes (sim payload + traffic cursor) and resumed in a
    // fresh simulator and a fresh source.
    let mut first = build_sim(scheme, threads, trojan, topo);
    let mut src = RandSource::new(seed, inject_until);
    first.run(ckpt_at, &mut src);
    if quarantine {
        quarantine_hot_link(&mut first);
    }
    let mut snap = first.snapshot();
    let mut cursor = Vec::new();
    src.save_cursor(&mut cursor);
    snap.set_user_data(cursor);
    let bytes = snap.to_bytes();
    drop(first);
    let _ = src;

    let snap = SimSnapshot::from_bytes(&bytes).expect("snapshot decodes");
    let mut resumed = build_sim(scheme, threads, trojan, topo);
    resumed.restore(&snap).expect("snapshot restores");
    let mut resumed_src = RandSource::new(0, 0);
    let mut cursor = snap.user_data();
    resumed_src.load_cursor(&mut cursor);
    prop_assert!(cursor.is_empty(), "cursor fully consumed");
    resumed.run(extra, &mut resumed_src);

    let resumed_snap = resumed.snapshot();
    let reference_snap = reference.snapshot();
    prop_assert_eq!(
        resumed_snap.payload(),
        reference_snap.payload(),
        "resumed state diverged (scheme {:?}, t={}, trojan {}, quarantine {}, ckpt {}, +{}, topo {})",
        scheme,
        threads,
        trojan,
        quarantine,
        ckpt_at,
        extra,
        topo
    );
    prop_assert_eq!(
        format!("{:?}", resumed.stats()),
        format!("{:?}", reference.stats())
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpoint → restore → run K more cycles == never checkpointing,
    /// over random seeds, checkpoint cycles, run lengths, schemes,
    /// thread counts, and trojan/quarantine states.
    #[test]
    fn checkpoint_resume_is_bit_identical(
        seed in any::<u64>(),
        scheme_pervc in any::<bool>(),
        four_threads in any::<bool>(),
        trojan in any::<bool>(),
        quarantine in any::<bool>(),
        ckpt_at in 40u64..240,
        extra in 40u64..240,
        topo in 0u8..3,
    ) {
        let scheme = if scheme_pervc { RetxScheme::PerVc } else { RetxScheme::Output };
        let threads = if four_threads { 4 } else { 1 };
        // Quarantine only makes sense with the trojan's link present.
        checkpoint_resume_matches(
            seed, scheme, threads, trojan, quarantine && trojan, ckpt_at, extra, topo,
        )?;
    }

    /// Any corruption of the encoded bytes — truncation at a random
    /// point or a random bit flip — must surface as a typed decode
    /// error, never a panic, and a truncated-to-valid-prefix file must
    /// never decode as a shorter-but-valid snapshot.
    #[test]
    fn corrupted_snapshot_bytes_never_panic(
        seed in any::<u64>(),
        cut_sel in any::<u64>(),
        flip_sel in any::<u64>(),
        flip_bit in 0u8..8,
    ) {
        let mut sim = build_sim(RetxScheme::Output, 1, true, 0);
        let mut src = RandSource::new(seed, 80);
        sim.run(120, &mut src);
        let bytes = sim.snapshot().to_bytes();

        // Truncation: every proper prefix fails to decode.
        let cut = (cut_sel % bytes.len() as u64) as usize;
        prop_assert!(
            SimSnapshot::from_bytes(&bytes[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte snapshot must not decode",
            bytes.len()
        );

        // Bit flip: detected by magic, CRC, or structural checks.
        let mut flipped = bytes.clone();
        let at = (flip_sel % bytes.len() as u64) as usize;
        flipped[at] ^= 1 << flip_bit;
        let err = SimSnapshot::from_bytes(&flipped).expect_err("bit flip must be detected");
        prop_assert!(
            matches!(
                err,
                SnapshotError::Corrupt(_) | SnapshotError::VersionMismatch { .. }
            ),
            "unexpected error kind: {err:?}"
        );
    }
}
