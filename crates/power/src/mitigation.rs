//! Cost model of the proposed mitigation hardware (Table II): the threat
//! source detector plus the L-Ob obfuscation block, per router.
//!
//! The paper reports ≈ 2 % router area and ≈ 6 % router power overhead,
//! with both blocks meeting the 2 GHz timing budget. The power overhead
//! exceeds the area share because the added logic sits directly on the
//! flit datapath (every arriving flit is fingerprinted; every obfuscated
//! retransmission is transformed and re-encoded), so its activity — and
//! the extra retransmission-buffer traffic it induces — is far above the
//! router average.

use crate::cells::CellLibrary;
use crate::component::Power;
use crate::router::RouterPower;

/// Mitigation hardware breakdown for one router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationPower {
    /// Threat source detector (fault log + syndrome compare + FSM).
    pub detector: Power,
    /// L-Ob block (invert/rotate/scramble datapath + method log).
    pub lob: Power,
    /// Extra switching induced in the existing retransmission path
    /// (obfuscation writes/reads, undo stalls, success notifications).
    pub induced: Power,
}

impl MitigationPower {
    /// Cost the mitigation blocks against a given router.
    pub fn model(lib: &CellLibrary, router: &RouterPower) -> Self {
        // Threat detector: an 8-entry fault log (syndrome + packet
        // signature ≈ 10 bits/entry after hashing), per-port compare logic
        // and the Fig. 6 decision FSM.
        let det_ffs = 84.0;
        let det_gates = 170.0;
        let detector = Power {
            area_um2: det_ffs * lib.ff_area + det_gates * lib.gate_area,
            dynamic_uw: det_ffs * lib.ff_dyn + det_gates * lib.gate_dyn,
            leakage_nw: det_ffs * lib.ff_leak + det_gates * lib.gate_leak,
            timing_ns: 5.0 * lib.level_delay,
        };
        // L-Ob: a 72-bit invert/rotate/XOR mux layer on the output datapath
        // plus the per-link method log.
        let lob_ffs = 56.0;
        let lob_gates = 126.0;
        let lob = Power {
            area_um2: lob_ffs * lib.ff_area + lob_gates * lib.gate_area,
            dynamic_uw: lob_ffs * lib.ff_dyn + lob_gates * lib.gate_dyn,
            leakage_nw: lob_ffs * lib.ff_leak + lob_gates * lib.gate_leak,
            timing_ns: 3.0 * lib.level_delay,
        };
        // Induced activity in pre-existing structures (calibrated to the
        // paper's measured total): the obfuscation path re-reads and
        // re-writes retransmission slots and re-encodes ECC on every
        // protected traversal.
        let induced = Power {
            area_um2: 0.0,
            dynamic_uw: router.buffers.dynamic_uw * 0.0533,
            leakage_nw: 0.0,
            timing_ns: 0.0,
        };
        Self {
            detector,
            lob,
            induced,
        }
    }

    /// The paper-configured model.
    pub fn paper() -> Self {
        Self::model(&CellLibrary::tsmc40(), &RouterPower::paper())
    }

    /// Sum of all mitigation blocks.
    pub fn total(&self) -> Power {
        self.detector + self.lob + self.induced
    }

    /// `(area overhead, power overhead)` relative to the given router.
    pub fn overhead(&self, router: &RouterPower) -> (f64, f64) {
        let t = self.total();
        let r = router.total();
        (t.area_um2 / r.area_um2, t.dynamic_uw / r.dynamic_uw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_table2() {
        let router = RouterPower::paper();
        let m = MitigationPower::paper();
        let (area, power) = m.overhead(&router);
        // Paper: "only 2% and 6% increase in area and power consumption".
        assert!((area - 0.02).abs() < 0.005, "area overhead {:.3}", area);
        assert!((power - 0.06).abs() < 0.01, "power overhead {:.3}", power);
    }

    #[test]
    fn both_blocks_fit_the_clock() {
        let m = MitigationPower::paper();
        assert!(m.detector.timing_ns <= 0.5);
        assert!(m.lob.timing_ns <= 0.5);
    }

    #[test]
    fn detector_is_bigger_than_lob() {
        // The fault log dominates; the L-Ob datapath is mostly muxes.
        let m = MitigationPower::paper();
        assert!(m.detector.area_um2 > m.lob.area_um2);
    }

    #[test]
    fn mitigation_is_cheaper_than_a_tenth_of_the_buffers() {
        let router = RouterPower::paper();
        let m = MitigationPower::paper();
        assert!(m.total().area_um2 < router.buffers.area_um2 * 0.1);
    }
}
