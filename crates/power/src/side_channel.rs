//! Side-channel detectability of a dormant TASP (§V-A: "The static power
//! cost of a HT is important because when the HT is idle, it remains the
//! only visible characteristic that is detectable").
//!
//! Model: a measurement compares a suspect chip's idle (leakage) power
//! against a golden distribution whose standard deviation comes from
//! process variation. The trojan is detectable when its added leakage
//! rises above the measurement noise floor — the classic SNR test of the
//! current-integration literature the paper cites ([16]).

use crate::cells::CellLibrary;
use crate::router::RouterPower;
use crate::tasp::TaspPower;
use noc_trojan::TargetKind;

/// Side-channel measurement context.
#[derive(Debug, Clone, Copy)]
pub struct SideChannelModel {
    /// Relative process-variation σ of a router's leakage (die-to-die
    /// leakage spread at 40 nm is large; 3–10 % within-die after
    /// calibration is typical for the localized analyses of [16]).
    pub leakage_sigma_frac: f64,
    /// Number of averaged measurements (averaging shrinks noise by √n).
    pub measurements: u32,
    /// Detection threshold in σ (e.g. 3σ for a 99.7 % test).
    pub threshold_sigma: f64,
}

impl Default for SideChannelModel {
    fn default() -> Self {
        Self {
            leakage_sigma_frac: 0.05,
            measurements: 100,
            threshold_sigma: 3.0,
        }
    }
}

impl SideChannelModel {
    /// Signal-to-noise ratio of one dormant TASP against one router's
    /// leakage distribution: `added leakage / (σ_router / √n)`.
    pub fn snr(&self, tasp_leak_nw: f64, router_leak_nw: f64) -> f64 {
        let sigma = router_leak_nw * self.leakage_sigma_frac;
        let noise = sigma / (self.measurements as f64).sqrt();
        tasp_leak_nw / noise
    }

    /// Whether a dormant trojan with this leakage clears the detection
    /// threshold.
    pub fn detectable(&self, tasp_leak_nw: f64, router_leak_nw: f64) -> bool {
        self.snr(tasp_leak_nw, router_leak_nw) >= self.threshold_sigma
    }

    /// The attacker's design rule (§III-B: the FSM "should be large to
    /// camouflage its intentions, but small to decrease the amount of
    /// power hungry flip-flops needed to avoid side-channel analysis
    /// detection"): the widest payload counter whose idle leakage stays
    /// below the threshold, for a given comparator variant. Returns `None`
    /// if even `Y = 1` is detectable under this measurement context.
    pub fn max_stealthy_y(&self, kind: TargetKind) -> Option<u8> {
        let router_leak = RouterPower::paper().total().leakage_nw;
        (1..=10u8)
            .take_while(|y| {
                let tasp = TaspPower::new(CellLibrary::tsmc40())
                    .with_y_bits(*y as u32)
                    .variant(kind);
                !self.detectable(tasp.leakage_nw, router_leak)
            })
            .last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_context_cannot_see_a_paper_sized_tasp() {
        // Table I leakage (~15–30 nW) against a router leaking ~28 µW with
        // 5 % spread: the trojan hides under the noise even with heavy
        // averaging — the paper's feasibility argument.
        let m = SideChannelModel::default();
        let router = RouterPower::paper().total().leakage_nw;
        for (_, p) in TaspPower::new(CellLibrary::tsmc40()).table1() {
            assert!(!m.detectable(p.leakage_nw, router), "{p:?}");
        }
    }

    #[test]
    fn snr_grows_with_averaging() {
        let base = SideChannelModel::default();
        let heavy = SideChannelModel {
            measurements: 10_000,
            ..base
        };
        let router = RouterPower::paper().total().leakage_nw;
        assert!(heavy.snr(30.0, router) > base.snr(30.0, router) * 9.0);
    }

    #[test]
    fn a_bloated_payload_counter_eventually_shows_up() {
        // Tight calibration (1 % spread, 10⁶ averaged samples) makes large
        // counters visible — the attacker's reason to keep Y small.
        let tight = SideChannelModel {
            leakage_sigma_frac: 0.01,
            measurements: 1_000_000,
            threshold_sigma: 3.0,
        };
        let max = tight.max_stealthy_y(TargetKind::Dest);
        assert!(max.is_none() || max.unwrap() < 10, "{max:?}");
        // And the stealth budget shrinks as measurements improve.
        let loose = SideChannelModel::default();
        let loose_max = loose.max_stealthy_y(TargetKind::Dest).unwrap_or(0);
        let tight_max = tight.max_stealthy_y(TargetKind::Dest).unwrap_or(0);
        assert!(loose_max >= tight_max);
    }

    #[test]
    fn snr_is_linear_in_the_trojan_leakage() {
        let m = SideChannelModel::default();
        let router = 28_000.0;
        assert!((m.snr(60.0, router) - 2.0 * m.snr(30.0, router)).abs() < 1e-9);
    }
}
