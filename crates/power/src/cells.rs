//! Per-cell constants for the calibrated TSMC-40 nm model.

/// Cell library constants at 1.0 V / 2 GHz. The values are calibrated so
/// that structural gate counts of the paper's blocks reproduce its
/// synthesis results; see the crate docs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellLibrary {
    /// Area of a NAND2-equivalent gate (µm²).
    pub gate_area: f64,
    /// Area of a D flip-flop (µm²).
    pub ff_area: f64,
    /// Area of one compact comparator bit (XNOR + its share of the match
    /// tree), µm².
    pub cmp_bit_area: f64,
    /// Dynamic power of a gate at activity 1.0 and 2 GHz (µW).
    pub gate_dyn: f64,
    /// Dynamic power of a flip-flop including its clock pin (µW).
    pub ff_dyn: f64,
    /// Leakage of a gate (nW).
    pub gate_leak: f64,
    /// Leakage of a flip-flop (nW).
    pub ff_leak: f64,
    /// Leakage of one comparator bit (nW).
    pub cmp_bit_leak: f64,
    /// Delay of one logic level (ns).
    pub level_delay: f64,
    /// Area of one millimetre of one repeated global wire (µm²), including
    /// spacing and repeaters.
    pub wire_area_per_mm: f64,
    /// Operating frequency (GHz), for documentation and scaling.
    pub freq_ghz: f64,
}

impl CellLibrary {
    /// The calibrated 40 nm library.
    pub fn tsmc40() -> Self {
        Self {
            gate_area: 0.9,
            ff_area: 3.2,
            cmp_bit_area: 0.45,
            gate_dyn: 0.55,
            ff_dyn: 1.1,
            gate_leak: 1.0,
            ff_leak: 2.5,
            cmp_bit_leak: 0.066,
            level_delay: 0.03,
            wire_area_per_mm: 620.0,
            freq_ghz: 2.0,
        }
    }

    /// Rescale the library to another clock under dynamic frequency
    /// scaling: dynamic power is linear in f (same voltage), leakage and
    /// area are frequency-independent, and propagation delays don't move —
    /// only the cycle budget does. The paper notes the TASP "fits well
    /// within the 0.5 ns window, even for architectures with dynamic
    /// frequency scaling (DFS)".
    pub fn at_frequency(&self, ghz: f64) -> Self {
        assert!(ghz > 0.0);
        let scale = ghz / self.freq_ghz;
        Self {
            gate_dyn: self.gate_dyn * scale,
            ff_dyn: self.ff_dyn * scale,
            freq_ghz: ghz,
            ..*self
        }
    }

    /// The clock period in ns at this library's frequency.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.freq_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_constants_are_physical() {
        let lib = CellLibrary::tsmc40();
        assert!(lib.gate_area > 0.0 && lib.gate_area < 5.0);
        assert!(lib.ff_area > lib.gate_area, "FFs are bigger than gates");
        assert!(lib.ff_leak > lib.gate_leak);
        assert!(lib.level_delay > 0.0 && lib.level_delay < 0.1);
        assert_eq!(lib.freq_ghz, 2.0);
    }

    #[test]
    fn dfs_scales_dynamic_power_only() {
        let base = CellLibrary::tsmc40();
        let slow = base.at_frequency(1.0);
        assert_eq!(slow.gate_dyn, base.gate_dyn / 2.0);
        assert_eq!(slow.ff_dyn, base.ff_dyn / 2.0);
        assert_eq!(slow.gate_leak, base.gate_leak, "leakage is static");
        assert_eq!(slow.gate_area, base.gate_area, "area is static");
        assert_eq!(slow.level_delay, base.level_delay, "gates don't speed up");
        assert_eq!(slow.cycle_ns(), 1.0);
    }

    #[test]
    fn tasp_fits_the_lt_window_across_dfs_range() {
        // The paper's DFS remark: even scaled down to 1 GHz (a 1 ns cycle)
        // or up to 2.5 GHz (0.4 ns), every TASP variant's comparator path
        // fits the link-traversal stage.
        use crate::tasp::TaspPower;
        for ghz in [1.0, 2.0, 2.5] {
            let lib = CellLibrary::tsmc40().at_frequency(ghz);
            let window = lib.cycle_ns();
            for (kind, p) in TaspPower::new(lib).table1() {
                assert!(
                    p.timing_ns < window,
                    "{} at {ghz} GHz: {:.3} ns ≥ {:.3} ns",
                    kind.name(),
                    p.timing_ns,
                    window
                );
            }
        }
    }
}
