//! Chip-level aggregation: the right-hand pies of Fig. 8.
//!
//! The NoC consists of 16 routers (active area) and 48 inter-router links
//! whose repeated global wires dominate the footprint. The worst-case
//! trojan scenario mounts one TASP on every link.

use crate::cells::CellLibrary;
use crate::component::Power;
use crate::router::RouterPower;
use crate::tasp::TaspPower;
use noc_trojan::TargetKind;

/// NoC-level structural parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocParams {
    /// Number of routers.
    pub routers: u32,
    /// Number of unidirectional links.
    pub links: u32,
    /// Wires per link (flit width + ECC check bits).
    pub wires_per_link: u32,
    /// Physical link length in mm (tile pitch of a 4-core tile at 40 nm).
    pub link_length_mm: f64,
}

impl NocParams {
    /// The paper platform: 16 routers, 48 links, 72-wire 1.77 mm links.
    pub fn paper() -> Self {
        Self {
            routers: 16,
            links: 48,
            wires_per_link: 72,
            link_length_mm: 1.77,
        }
    }
}

/// Chip-level cost aggregation.
#[derive(Debug, Clone, Copy)]
pub struct NocPower {
    /// Chip-level parameters.
    pub params: NocParams,
    /// The router cost model in use.
    pub router: RouterPower,
    lib: CellLibrary,
}

impl NocPower {
    /// The paper-configured chip model.
    pub fn paper() -> Self {
        Self {
            params: NocParams::paper(),
            router: RouterPower::paper(),
            lib: CellLibrary::tsmc40(),
        }
    }

    /// Total active (router) area.
    pub fn active_area(&self) -> f64 {
        self.router.total().area_um2 * self.params.routers as f64
    }

    /// Total global-wire area of all links.
    pub fn wire_area(&self) -> f64 {
        self.params.links as f64
            * self.params.wires_per_link as f64
            * self.params.link_length_mm
            * self.lib.wire_area_per_mm
    }

    /// One TASP instance (the worst-case `Full` comparator).
    pub fn tasp(&self) -> Power {
        TaspPower::new(self.lib).variant(TargetKind::Full)
    }

    /// Fig. 8 "NoC Area" pie: (TASP on every link, global wire, active).
    pub fn area_shares(&self) -> (f64, f64, f64) {
        let tasp_all = self.tasp().area_um2 * self.params.links as f64;
        let total = tasp_all + self.wire_area() + self.active_area();
        (
            tasp_all / total,
            self.wire_area() / total,
            self.active_area() / total,
        )
    }

    /// Fig. 8 "NoC Dynamic Power" pie: (routers, TASP on all 48 links).
    pub fn dynamic_shares(&self) -> (f64, f64) {
        let routers = self.router.total().dynamic_uw * self.params.routers as f64;
        let tasp_all = self.tasp().dynamic_uw * self.params.links as f64;
        let total = routers + tasp_all;
        (routers / total, tasp_all / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wires_dominate_noc_area_like_figure8() {
        let noc = NocPower::paper();
        let (tasp, wire, active) = noc.area_shares();
        // Paper pie: wires 86 %, active 13 %, TASP (all links) ~1 %.
        assert!((wire - 0.86).abs() < 0.03, "wire share {wire:.3}");
        assert!((active - 0.13).abs() < 0.03, "active share {active:.3}");
        assert!(tasp < 0.01, "48 trojans are ~0.1 % of chip area: {tasp:.4}");
    }

    #[test]
    fn routers_take_virtually_all_dynamic_power() {
        let noc = NocPower::paper();
        let (routers, tasp_all) = noc.dynamic_shares();
        // Paper: routers 99.44 %, TASP on all 48 links 0.56 %.
        assert!(
            (routers - 0.9944).abs() < 0.002,
            "router share {routers:.4}"
        );
        assert!(
            (tasp_all - 0.0056).abs() < 0.002,
            "tasp share {tasp_all:.4}"
        );
    }

    #[test]
    fn shares_are_probability_distributions() {
        let noc = NocPower::paper();
        let (a, b, c) = noc.area_shares();
        assert!((a + b + c - 1.0).abs() < 1e-12);
        let (d, e) = noc.dynamic_shares();
        assert!((d + e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mounting_trojans_everywhere_stays_feasible() {
        // The paper's point: even 48 trojans are a rounding error, which is
        // why injection of multiple HTs is feasible for an attacker.
        let noc = NocPower::paper();
        let budget = noc.tasp().times(noc.params.links as f64);
        assert!(budget.area_um2 < noc.active_area() * 0.01);
    }
}
