//! Analytical area / power / timing model for the NoC micro-architecture,
//! the TASP trojan, and the proposed mitigation hardware.
//!
//! The paper synthesises its designs with Synopsys Design Compiler on TSMC
//! 40 nm libraries (1.0 V, 2 GHz). Neither the tool nor the libraries are
//! redistributable, so this crate provides a **calibrated gate-level
//! model**: each block is described by its structural content (flip-flops,
//! comparator bits, mux/XOR datapaths, wire runs) costed with per-cell
//! constants chosen so the model lands on the paper's published numbers
//! (Table I, Table II, Figs. 8–9). The *shape* conclusions — which target
//! variant is biggest, trojan ≪ 1 % of a router, mitigation ≈ 2 % area /
//! ≈ 6 % power — follow from the structure, not the calibration.
//!
//! All areas are in µm², dynamic power in µW, leakage in nW, delay in ns,
//! at 2 GHz and 1.0 V unless stated otherwise.

pub mod cells;
pub mod component;
pub mod mitigation;
pub mod noc;
pub mod router;
pub mod side_channel;
pub mod tasp;

pub use cells::CellLibrary;
pub use component::Power;
pub use mitigation::MitigationPower;
pub use noc::NocPower;
pub use router::RouterPower;
pub use side_channel::SideChannelModel;
pub use tasp::TaspPower;
