//! The common area/power/timing quadruple and its algebra.

use std::ops::Add;

/// Area, dynamic power, leakage and critical path of one block.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Power {
    /// µm².
    pub area_um2: f64,
    /// µW at 2 GHz.
    pub dynamic_uw: f64,
    /// nW.
    pub leakage_nw: f64,
    /// ns (0 for blocks off the critical path).
    pub timing_ns: f64,
}

impl Power {
    /// Construct a quadruple from explicit values.
    pub fn new(area_um2: f64, dynamic_uw: f64, leakage_nw: f64, timing_ns: f64) -> Self {
        Self {
            area_um2,
            dynamic_uw,
            leakage_nw,
            timing_ns,
        }
    }

    /// Replicate the block `n` times (areas and powers add; timing is the
    /// per-instance path, unchanged).
    pub fn times(self, n: f64) -> Self {
        Self {
            area_um2: self.area_um2 * n,
            dynamic_uw: self.dynamic_uw * n,
            leakage_nw: self.leakage_nw * n,
            timing_ns: self.timing_ns,
        }
    }

    /// Total power in µW (dynamic + leakage).
    pub fn total_uw(&self) -> f64 {
        self.dynamic_uw + self.leakage_nw / 1000.0
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power {
            area_um2: self.area_um2 + rhs.area_um2,
            dynamic_uw: self.dynamic_uw + rhs.dynamic_uw,
            leakage_nw: self.leakage_nw + rhs.leakage_nw,
            timing_ns: self.timing_ns.max(rhs.timing_ns),
        }
    }
}

impl std::iter::Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_accumulates_and_takes_worst_timing() {
        let a = Power::new(10.0, 1.0, 100.0, 0.2);
        let b = Power::new(5.0, 2.0, 50.0, 0.3);
        let c = a + b;
        assert_eq!(c.area_um2, 15.0);
        assert_eq!(c.dynamic_uw, 3.0);
        assert_eq!(c.leakage_nw, 150.0);
        assert_eq!(c.timing_ns, 0.3);
    }

    #[test]
    fn times_scales_everything_but_timing() {
        let p = Power::new(2.0, 3.0, 4.0, 0.1).times(10.0);
        assert_eq!(p.area_um2, 20.0);
        assert_eq!(p.dynamic_uw, 30.0);
        assert_eq!(p.leakage_nw, 40.0);
        assert_eq!(p.timing_ns, 0.1);
    }

    #[test]
    fn total_power_merges_units() {
        let p = Power::new(0.0, 10.0, 2000.0, 0.0);
        assert_eq!(p.total_uw(), 12.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Power = (0..4).map(|_| Power::new(1.0, 1.0, 1.0, 0.1)).sum();
        assert_eq!(total.area_um2, 4.0);
    }
}
