//! TASP trojan cost model: Table I and Fig. 9 of the paper.
//!
//! Structure: a k-bit comparator (k set by the target variant), a Y-bit
//! payload counter with its next-state logic, the two-tap XOR tree, and the
//! trigger glue. Dynamic power is dominated by the comparator, whose
//! switching depends on the *activity* of the compared header field:
//! VC bits toggle on nearly every flit, source/destination change per flow,
//! and high memory-address bits barely move. The `Full` variant
//! additionally pays for its wide 42-bit match-reduce tree, which switches
//! on every partial match — that is why the paper measures it at ~2.5× the
//! power of the narrow variants.

use crate::cells::CellLibrary;
use crate::component::Power;
use noc_trojan::TargetKind;

/// Calibrated per-bit dynamic activity (µW/bit at 2 GHz) per header field.
const DYN_PER_BIT_VC: f64 = 0.80;
const DYN_PER_BIT_SRC_DEST: f64 = 0.2425;
const DYN_PER_BIT_MEM: f64 = 0.0375;
/// Extra switching of the 42-bit match-reduce tree in the `Full` variant.
const FULL_TREE_DYN_UW: f64 = 11.76;
const FULL_TREE_LEAK_NW: f64 = 12.57;

/// TASP cost model.
#[derive(Debug, Clone, Copy)]
pub struct TaspPower {
    lib: CellLibrary,
    /// Payload counter width.
    pub y_bits: u32,
}

impl TaspPower {
    /// A TASP cost model over the given library (Y = 2).
    pub fn new(lib: CellLibrary) -> Self {
        Self { lib, y_bits: 2 }
    }

    /// Set the payload-counter width.
    pub fn with_y_bits(mut self, y: u32) -> Self {
        self.y_bits = y;
        self
    }

    /// The fixed (target-independent) part: payload counter, XOR tree,
    /// trigger glue, kill-switch isolation.
    pub fn fixed_block(&self) -> Power {
        let lib = &self.lib;
        let ffs = self.y_bits as f64;
        let counter_gates = 3.0 * self.y_bits as f64;
        let xor_tree_gates = 2.0 * (1u32 << self.y_bits) as f64;
        let glue_gates = 6.0;
        let gates = counter_gates + xor_tree_gates + glue_gates;
        // Tapping n link wires loads the drivers regardless of target
        // width; this constant is the per-instance wire-tap switching cost.
        let wire_tap_dyn = 4.38;
        Power {
            area_um2: ffs * lib.ff_area + gates * lib.gate_area + 8.3,
            // The FSM holds state between injections: only clock load and
            // trigger glue switch at line rate.
            dynamic_uw: ffs * lib.ff_dyn * 0.6 + glue_gates * lib.gate_dyn + wire_tap_dyn,
            leakage_nw: ffs * lib.ff_leak + gates * lib.gate_leak * 0.5,
            timing_ns: 2.0 * lib.level_delay,
        }
    }

    /// The k-bit comparator for a target variant.
    pub fn comparator(&self, kind: TargetKind) -> Power {
        let lib = &self.lib;
        let k = kind.comparator_bits() as f64;
        let dynamic = match kind {
            TargetKind::Vc => k * DYN_PER_BIT_VC,
            TargetKind::Src | TargetKind::Dest | TargetKind::DestSrc => k * DYN_PER_BIT_SRC_DEST,
            TargetKind::Mem => k * DYN_PER_BIT_MEM,
            TargetKind::Full => {
                2.0 * DYN_PER_BIT_VC
                    + 8.0 * DYN_PER_BIT_SRC_DEST
                    + 32.0 * DYN_PER_BIT_MEM
                    + FULL_TREE_DYN_UW
            }
        };
        let tree_leak = if kind == TargetKind::Full {
            FULL_TREE_LEAK_NW
        } else {
            0.0
        };
        let depth = k.log2().ceil() + 2.0;
        Power {
            area_um2: k * lib.cmp_bit_area,
            dynamic_uw: dynamic,
            leakage_nw: k * lib.cmp_bit_leak + tree_leak,
            timing_ns: depth * lib.level_delay,
        }
    }

    /// Complete TASP instance cost for a target variant (a Table I column).
    pub fn variant(&self, kind: TargetKind) -> Power {
        self.fixed_block() + self.comparator(kind)
    }

    /// All six variants in the paper's column order.
    pub fn table1(&self) -> Vec<(TargetKind, Power)> {
        TargetKind::ALL
            .iter()
            .map(|k| (*k, self.variant(*k)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TaspPower {
        TaspPower::new(CellLibrary::tsmc40())
    }

    /// Paper Table I values: (area µm², dynamic µW, leakage nW).
    fn paper_value(kind: TargetKind) -> (f64, f64, f64) {
        match kind {
            TargetKind::Full => (50.45, 25.5304, 30.2694),
            TargetKind::Dest => (33.516, 9.9263, 16.2355),
            TargetKind::Src => (33.516, 9.9263, 16.2355),
            TargetKind::DestSrc => (37.044, 10.9416, 16.2498),
            TargetKind::Mem => (44.4528, 10.1997, 17.0468),
            TargetKind::Vc => (31.9284, 10.5953, 15.0765),
        }
    }

    fn within(actual: f64, expected: f64, tol: f64) -> bool {
        (actual - expected).abs() <= expected * tol
    }

    #[test]
    fn areas_track_table1_within_10_percent() {
        let m = model();
        for kind in TargetKind::ALL {
            let (area, _, _) = paper_value(kind);
            let got = m.variant(kind).area_um2;
            assert!(
                within(got, area, 0.10),
                "{}: area {got:.2} vs paper {area:.2}",
                kind.name()
            );
        }
    }

    #[test]
    fn dynamic_power_tracks_table1_within_10_percent() {
        let m = model();
        for kind in TargetKind::ALL {
            let (_, dyn_uw, _) = paper_value(kind);
            let got = m.variant(kind).dynamic_uw;
            assert!(
                within(got, dyn_uw, 0.10),
                "{}: dynamic {got:.3} vs paper {dyn_uw:.3}",
                kind.name()
            );
        }
    }

    #[test]
    fn leakage_tracks_table1_within_15_percent() {
        let m = model();
        for kind in TargetKind::ALL {
            let (_, _, leak) = paper_value(kind);
            let got = m.variant(kind).leakage_nw;
            assert!(
                within(got, leak, 0.15),
                "{}: leakage {got:.2} vs paper {leak:.2}",
                kind.name()
            );
        }
    }

    #[test]
    fn area_ordering_matches_figure9() {
        // Full > Mem > Dest_Src > Dest = Src > VC.
        let m = model();
        let area = |k| m.variant(k).area_um2;
        assert!(area(TargetKind::Full) > area(TargetKind::Mem));
        assert!(area(TargetKind::Mem) > area(TargetKind::DestSrc));
        assert!(area(TargetKind::DestSrc) > area(TargetKind::Dest));
        assert_eq!(area(TargetKind::Dest), area(TargetKind::Src));
        assert!(area(TargetKind::Dest) > area(TargetKind::Vc));
    }

    #[test]
    fn full_variant_burns_most_dynamic_power() {
        let m = model();
        let full = m.variant(TargetKind::Full).dynamic_uw;
        for kind in TargetKind::ALL {
            if kind != TargetKind::Full {
                assert!(full > 2.0 * m.variant(kind).dynamic_uw);
            }
        }
    }

    #[test]
    fn every_variant_fits_the_lt_timing_window() {
        // 2 GHz ⇒ 0.5 ns cycle; the paper reports 0.21 ns for every
        // variant. Our structural estimate must stay inside the window.
        let m = model();
        for (kind, p) in m.table1() {
            assert!(
                p.timing_ns <= 0.30,
                "{}: {:.3} ns exceeds the LT window",
                kind.name(),
                p.timing_ns
            );
        }
    }

    #[test]
    fn wider_payload_counter_costs_more() {
        let small = model().with_y_bits(2).fixed_block();
        let big = model().with_y_bits(6).fixed_block();
        assert!(big.area_um2 > small.area_um2);
        assert!(big.leakage_nw > small.leakage_nw);
    }
}
