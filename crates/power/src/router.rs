//! Router cost model: the Fig. 8 component breakdown.
//!
//! Paper router: 8 ports (4 network + 4 local), 4 VCs × 4 × 64-bit buffer
//! slots per port, an 8×8 64-bit crossbar, separable round-robin
//! allocators, retransmission buffers, and the clock tree. The published
//! dynamic-power split is buffers 71 %, crossbar 18 %, switch allocator
//! 4 %, clock 6 %; leakage splits 88 % / 9 % / 3 % / ~0 %.

use crate::cells::CellLibrary;
use crate::component::Power;

/// Per-component breakdown of one router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterPower {
    /// Input + retransmission buffer arrays.
    pub buffers: Power,
    /// The ports x ports flit-wide crossbar.
    pub crossbar: Power,
    /// VC + switch allocators.
    pub allocators: Power,
    /// Clock tree.
    pub clock: Power,
}

/// Router structural parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterParams {
    /// Ports per router (4 network + locals).
    pub ports: u32,
    /// Virtual channels per port.
    pub vcs: u32,
    /// Buffer slots per VC.
    pub vc_depth: u32,
    /// Flit width in bits.
    pub flit_bits: u32,
    /// Retransmission slots per network output (stored at codeword width).
    pub retx_slots: u32,
    /// Network output ports carrying retransmission buffers.
    pub net_outputs: u32,
}

impl RouterParams {
    /// The paper router: 8 ports, 4 VCs x 4 x 64-bit slots.
    pub fn paper() -> Self {
        Self {
            ports: 8,
            vcs: 4,
            vc_depth: 4,
            flit_bits: 64,
            retx_slots: 4,
            net_outputs: 4,
        }
    }
}

impl RouterPower {
    /// Cost a router with the given structure.
    pub fn model(lib: &CellLibrary, p: &RouterParams) -> Self {
        // --- Buffers: input VC FIFOs + retransmission buffers ------------
        let input_bits = (p.ports * p.vcs * p.vc_depth * p.flit_bits) as f64;
        let retx_bits = (p.net_outputs * p.retx_slots * (p.flit_bits + 8)) as f64;
        let buffer_ffs = input_bits + retx_bits;
        // FIFO control: head/tail pointers and credit counters per VC.
        let buffer_gates = (p.ports * p.vcs) as f64 * 30.0;
        let buffers = Power {
            area_um2: buffer_ffs * lib.ff_area * 0.92 + buffer_gates * lib.gate_area,
            // Storage switches on every write/read; average activity over
            // the whole array is low but the array is huge.
            dynamic_uw: buffer_ffs * lib.ff_dyn,
            leakage_nw: buffer_ffs * lib.ff_leak + buffer_gates * lib.gate_leak,
            timing_ns: 3.0 * lib.level_delay,
        };
        // --- Crossbar: ports × ports muxes at flit width ------------------
        let xbar_gates = (p.ports * p.ports * p.flit_bits) as f64;
        let crossbar = Power {
            area_um2: xbar_gates * lib.gate_area * 0.8,
            dynamic_uw: buffers.dynamic_uw * 18.0 / 71.0,
            leakage_nw: buffers.leakage_nw * 9.0 / 88.0,
            timing_ns: 4.0 * lib.level_delay,
        };
        // --- Allocators: VA + SA round-robin trees ------------------------
        let alloc_gates = (p.ports * p.vcs) as f64 * (p.ports as f64) * 14.0;
        let allocators = Power {
            area_um2: alloc_gates * lib.gate_area,
            dynamic_uw: buffers.dynamic_uw * 4.0 / 71.0,
            leakage_nw: buffers.leakage_nw * 3.0 / 88.0,
            timing_ns: 6.0 * lib.level_delay,
        };
        // --- Clock tree ----------------------------------------------------
        let clock = Power {
            area_um2: (buffers.area_um2 + crossbar.area_um2) * 0.04,
            dynamic_uw: buffers.dynamic_uw * 6.0 / 71.0,
            leakage_nw: buffers.leakage_nw * 0.002,
            timing_ns: 0.0,
        };
        Self {
            buffers,
            crossbar,
            allocators,
            clock,
        }
    }

    /// The paper's router.
    pub fn paper() -> Self {
        Self::model(&CellLibrary::tsmc40(), &RouterParams::paper())
    }

    /// The total over all components.
    pub fn total(&self) -> Power {
        self.buffers + self.crossbar + self.allocators + self.clock
    }

    /// `(name, dynamic share, leakage share)` rows of the Fig. 8 pies.
    pub fn shares(&self) -> Vec<(&'static str, f64, f64)> {
        let t = self.total();
        let row = |name, p: Power| {
            (
                name,
                p.dynamic_uw / t.dynamic_uw,
                p.leakage_nw / t.leakage_nw,
            )
        };
        vec![
            row("Buffer", self.buffers),
            row("Crossbar", self.crossbar),
            row("Switch allocator", self.allocators),
            row("Clock", self.clock),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_shares_match_figure8() {
        let r = RouterPower::paper();
        let shares = r.shares();
        let pct: Vec<f64> = shares.iter().map(|(_, d, _)| d * 100.0).collect();
        // Paper: buffer 71, crossbar 18, SA 4, clock 6 (TASP takes the
        // remaining ~1 % when mounted; see NocPower).
        assert!((pct[0] - 71.7).abs() < 2.0, "buffer {:.1}%", pct[0]);
        assert!((pct[1] - 18.2).abs() < 2.0, "crossbar {:.1}%", pct[1]);
        assert!((pct[2] - 4.0).abs() < 1.5, "allocator {:.1}%", pct[2]);
        assert!((pct[3] - 6.1).abs() < 1.5, "clock {:.1}%", pct[3]);
    }

    #[test]
    fn leakage_shares_match_figure8() {
        let r = RouterPower::paper();
        let shares = r.shares();
        let pct: Vec<f64> = shares.iter().map(|(_, _, l)| l * 100.0).collect();
        // Paper: buffer 88, crossbar 9, SA 3, clock ~0.
        assert!((pct[0] - 88.0).abs() < 2.5, "buffer {:.1}%", pct[0]);
        assert!((pct[1] - 9.0).abs() < 2.0, "crossbar {:.1}%", pct[1]);
        assert!((pct[2] - 3.0).abs() < 1.5, "allocator {:.1}%", pct[2]);
        assert!(pct[3] < 1.0, "clock {:.1}%", pct[3]);
    }

    #[test]
    fn buffers_dominate_area() {
        let r = RouterPower::paper();
        let t = r.total();
        assert!(r.buffers.area_um2 / t.area_um2 > 0.6);
        // Router active area in a plausible 40 nm band (tens of kµm²).
        assert!(
            t.area_um2 > 15_000.0 && t.area_um2 < 80_000.0,
            "{}",
            t.area_um2
        );
    }

    #[test]
    fn single_tasp_is_below_one_percent_of_router() {
        use crate::tasp::TaspPower;
        use noc_trojan::TargetKind;
        let router = RouterPower::paper().total();
        let tasp = TaspPower::new(CellLibrary::tsmc40()).variant(TargetKind::Full);
        assert!(tasp.area_um2 / router.area_um2 < 0.01);
        assert!(tasp.dynamic_uw / router.dynamic_uw < 0.01);
        assert!(tasp.leakage_nw / router.leakage_nw < 0.01);
    }

    #[test]
    fn timing_fits_2ghz() {
        let r = RouterPower::paper();
        assert!(r.total().timing_ns <= 0.5);
    }

    #[test]
    fn bigger_routers_cost_more() {
        let lib = CellLibrary::tsmc40();
        let small = RouterPower::model(&lib, &RouterParams::paper()).total();
        let big = RouterPower::model(
            &lib,
            &RouterParams {
                vcs: 8,
                ..RouterParams::paper()
            },
        )
        .total();
        assert!(big.area_um2 > small.area_um2 * 1.5);
    }
}
