//! Mesh geometry: coordinates, directions, ports, and link numbering.
//!
//! The evaluation platform is a `k × k` 2-D mesh (4×4 in the paper) with a
//! concentration factor `c` (4 cores per router). Every adjacent router pair
//! is joined by **two unidirectional links**, one per direction; [`Mesh`]
//! assigns each a stable [`LinkId`] so trojans, fault injectors, and
//! statistics can all name "the +x link out of router 5" unambiguously.

use crate::ids::{CoreId, LinkId, NodeId};

/// A router position in the mesh. `x` grows eastward, `y` grows northward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (grows eastward).
    pub x: u8,
    /// Row (grows northward).
    pub y: u8,
}

impl Coord {
    #[inline]
    /// A new coordinate.
    pub fn new(x: u8, y: u8) -> Self {
        Self { x, y }
    }

    /// Manhattan (hop) distance between two router positions.
    #[inline]
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

/// One of the four mesh directions. The paper labels these ±x / ±y; we use
/// compass names with East = +x and North = +y.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Toward +x.
    East,
    /// Toward -x.
    West,
    /// Toward +y.
    North,
    /// Toward -y.
    South,
}

impl Direction {
    /// All directions in a fixed iteration order (matches port numbering).
    pub const ALL: [Direction; 4] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
    ];

    /// The direction a flit travels on the reverse link.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
        }
    }

    /// Unit step in this direction as `(dx, dy)`.
    #[inline]
    pub fn delta(self) -> (i8, i8) {
        match self {
            Direction::East => (1, 0),
            Direction::West => (-1, 0),
            Direction::North => (0, 1),
            Direction::South => (0, -1),
        }
    }

    /// Stable small index (used for port arrays).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
        }
    }
}

/// A router port: either one of the four network directions or a local
/// (core injection/ejection) port. With concentration 4 each router has four
/// local ports, indexed `0..4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Network port facing the given direction.
    Net(Direction),
    /// Local port for the `n`-th concentrated core on this router.
    Local(u8),
}

impl Port {
    /// Dense index for port arrays: network ports first (0..4), then locals.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Port::Net(d) => d.index(),
            Port::Local(n) => 4 + n as usize,
        }
    }

    /// Inverse of [`Port::index`].
    #[inline]
    pub fn from_index(i: usize) -> Port {
        match i {
            0 => Port::Net(Direction::East),
            1 => Port::Net(Direction::West),
            2 => Port::Net(Direction::North),
            3 => Port::Net(Direction::South),
            n => Port::Local((n - 4) as u8),
        }
    }

    /// Whether this is a local (core) port.
    #[inline]
    pub fn is_local(self) -> bool {
        matches!(self, Port::Local(_))
    }
}

/// The connection rule of the network fabric: which router pairs share a
/// link. The [`Mesh`] struct carries one of these; everything downstream
/// (link numbering, routing, shard planning) derives from the neighbour
/// relation it induces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Plain 2-D mesh: neighbours clipped at the boundary (the paper's
    /// evaluation platform).
    Mesh,
    /// 2-D torus: every row and column wraps around, so each router has
    /// all four neighbours. Deadlock-free routing on a torus needs the
    /// dateline VC scheme (see `noc-sim`'s `TopoRoutes`), which requires
    /// at least 2 virtual channels.
    Torus,
    /// A mesh with some adjacencies statically removed — the shape a
    /// post-quarantine network actually has. Removal is **symmetric**
    /// (both unidirectional links of an adjacency go away together), and
    /// each removed adjacency is stored in canonical form: the endpoint
    /// the East/North link leaves from, sorted and deduplicated.
    Degraded {
        /// Canonical removed adjacencies as `(node, East | North)`.
        removed: Vec<(NodeId, Direction)>,
    },
}

/// Geometry of a concentrated 2-D network.
///
/// Link numbering: for every router in row-major order and every direction in
/// [`Direction::ALL`] order, the outgoing link (if the neighbour exists) gets
/// the next [`LinkId`]. A 4×4 mesh therefore has 48 links, ids `0..48`; a
/// 4×4 torus has 64 (every router keeps all four neighbours).
#[derive(Clone, PartialEq, Eq)]
pub struct Mesh {
    width: u8,
    height: u8,
    concentration: u8,
    /// `link_ids[router][direction] == Some(id)` when the neighbour exists.
    link_ids: Vec<[Option<LinkId>; 4]>,
    /// Reverse map: link id → (source router, direction).
    link_ends: Vec<(NodeId, Direction)>,
    /// The connection rule the neighbour table was built from.
    topology: Topology,
    /// Precomputed `neighbors[router][direction]` under `topology`.
    neighbors: Vec<[Option<NodeId>; 4]>,
}

// The config hash (and several goldens) fingerprint the simulator config
// through its `Debug` text, so the plain-mesh rendering must stay exactly
// what the pre-topology derived impl produced: the original five fields,
// in order, with `topology` appended only when it deviates from the mesh
// default. (`neighbors` is derived data and never printed.)
impl std::fmt::Debug for Mesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("Mesh");
        d.field("width", &self.width)
            .field("height", &self.height)
            .field("concentration", &self.concentration)
            .field("link_ids", &self.link_ids)
            .field("link_ends", &self.link_ends);
        if self.topology != Topology::Mesh {
            d.field("topology", &self.topology);
        }
        d.finish()
    }
}

impl Mesh {
    /// Build a `width × height` mesh with `concentration` cores per router.
    ///
    /// # Panics
    /// Panics if the mesh has more than 4096 routers (LinkId stays a u16 and
    /// `NodeId` a u16) or any dimension is zero. Meshes beyond the paper's
    /// 16 routers alias src/dest in the 4-bit wire header fields (see
    /// `Header::pack`); the simulator routes on the logical header, so this
    /// only affects on-wire byte patterns, exactly as a real implementation
    /// reusing the paper's 42-bit header would behave.
    pub fn new(width: u8, height: u8, concentration: u8) -> Self {
        Self::with_topology(width, height, concentration, Topology::Mesh)
    }

    /// Build a `width × height` torus. Both dimensions must be at least 2
    /// (a 1-wide ring would wrap a router onto itself).
    pub fn new_torus(width: u8, height: u8, concentration: u8) -> Self {
        assert!(
            width >= 2 && height >= 2,
            "torus dimensions must be at least 2 (wrap links must not self-loop)"
        );
        Self::with_topology(width, height, concentration, Topology::Torus)
    }

    /// Build a mesh with the given adjacencies removed (both directions of
    /// each named pair). `removed` entries may name either endpoint of an
    /// adjacency; they are normalized to `(node, East | North)` form.
    ///
    /// # Panics
    /// Panics if an entry names a boundary direction with no mesh
    /// neighbour.
    pub fn new_degraded(
        width: u8,
        height: u8,
        concentration: u8,
        removed: &[(NodeId, Direction)],
    ) -> Self {
        let base = Self::new(width, height, concentration);
        let mut canon: Vec<(NodeId, Direction)> = removed
            .iter()
            .map(|&(n, d)| match d {
                Direction::East | Direction::North => {
                    assert!(
                        base.neighbor(n, d).is_some(),
                        "removed adjacency {n:?} {d:?} does not exist on the mesh"
                    );
                    (n, d)
                }
                Direction::West | Direction::South => {
                    let nb = base
                        .neighbor(n, d)
                        .unwrap_or_else(|| panic!("removed adjacency {n:?} {d:?} does not exist"));
                    (nb, d.opposite())
                }
            })
            .collect();
        canon.sort_by_key(|(n, d)| (n.0, d.index()));
        canon.dedup();
        Self::with_topology(
            width,
            height,
            concentration,
            Topology::Degraded { removed: canon },
        )
    }

    /// Build the neighbour table and link numbering for any topology.
    pub fn with_topology(width: u8, height: u8, concentration: u8, topology: Topology) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        assert!(
            (width as usize) * (height as usize) <= 4096,
            "simulator ids are 16-bit; at most 4096 routers"
        );
        assert!(concentration >= 1, "concentration must be at least 1");
        let routers = width as usize * height as usize;
        let node_at = |x: u8, y: u8| NodeId(y as u16 * width as u16 + x as u16);
        let mut neighbors = vec![[None; 4]; routers];
        for (r, nbs) in neighbors.iter_mut().enumerate() {
            let here = Self::coord_of_raw(width, r);
            for dir in Direction::ALL {
                let (dx, dy) = dir.delta();
                let nx = here.x as i16 + dx as i16;
                let ny = here.y as i16 + dy as i16;
                let inside = nx >= 0 && ny >= 0 && nx < width as i16 && ny < height as i16;
                nbs[dir.index()] = match &topology {
                    Topology::Mesh | Topology::Degraded { .. } if inside => {
                        Some(node_at(nx as u8, ny as u8))
                    }
                    Topology::Mesh | Topology::Degraded { .. } => None,
                    Topology::Torus => Some(node_at(
                        nx.rem_euclid(width as i16) as u8,
                        ny.rem_euclid(height as i16) as u8,
                    )),
                };
            }
        }
        if let Topology::Degraded { removed } = &topology {
            for &(n, d) in removed {
                debug_assert!(matches!(d, Direction::East | Direction::North));
                let nb = neighbors[n.index()][d.index()]
                    .expect("canonical removed adjacency exists on the mesh");
                neighbors[n.index()][d.index()] = None;
                neighbors[nb.index()][d.opposite().index()] = None;
            }
        }
        let mut link_ids = vec![[None; 4]; routers];
        let mut link_ends = Vec::new();
        for (r, ids) in link_ids.iter_mut().enumerate() {
            let node = NodeId(r as u16);
            for dir in Direction::ALL {
                if neighbors[r][dir.index()].is_none() {
                    continue;
                }
                let id = LinkId(link_ends.len() as u16);
                ids[dir.index()] = Some(id);
                link_ends.push((node, dir));
            }
        }
        Self {
            width,
            height,
            concentration,
            link_ids,
            link_ends,
            topology,
            neighbors,
        }
    }

    /// The paper's evaluation platform: 4×4 mesh, 4 cores per router.
    pub fn paper() -> Self {
        Self::new(4, 4, 4)
    }

    /// The connection rule this network was built from.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Whether every router can reach every other over the alive
    /// adjacencies (BFS over the neighbour table).
    pub fn connected(&self) -> bool {
        let n = self.routers();
        let mut seen = vec![false; n];
        let mut q = std::collections::VecDeque::new();
        seen[0] = true;
        q.push_back(NodeId(0));
        let mut count = 1;
        while let Some(at) = q.pop_front() {
            for dir in Direction::ALL {
                if let Some(nb) = self.neighbor(at, dir) {
                    if !seen[nb.index()] {
                        seen[nb.index()] = true;
                        count += 1;
                        q.push_back(nb);
                    }
                }
            }
        }
        count == n
    }

    #[inline]
    /// Mesh width in routers.
    pub fn width(&self) -> u8 {
        self.width
    }

    #[inline]
    /// Mesh height in routers.
    pub fn height(&self) -> u8 {
        self.height
    }

    #[inline]
    /// Cores per router.
    pub fn concentration(&self) -> u8 {
        self.concentration
    }

    /// Number of routers.
    #[inline]
    pub fn routers(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Number of cores (`routers × concentration`).
    #[inline]
    pub fn cores(&self) -> usize {
        self.routers() * self.concentration as usize
    }

    /// Number of unidirectional router-to-router links.
    #[inline]
    pub fn links(&self) -> usize {
        self.link_ends.len()
    }

    fn coord_of_raw(width: u8, index: usize) -> Coord {
        Coord::new(
            (index % width as usize) as u8,
            (index / width as usize) as u8,
        )
    }

    /// Position of a router.
    #[inline]
    pub fn coord_of(&self, node: NodeId) -> Coord {
        Self::coord_of_raw(self.width, node.index())
    }

    /// Router at a position.
    #[inline]
    pub fn node_at(&self, c: Coord) -> NodeId {
        debug_assert!(c.x < self.width && c.y < self.height);
        NodeId(c.y as u16 * self.width as u16 + c.x as u16)
    }

    /// The router a core is attached to (cores are numbered router-major).
    #[inline]
    pub fn router_of_core(&self, core: CoreId) -> NodeId {
        NodeId(core.0 / self.concentration as u16)
    }

    /// The local port index of a core on its router.
    #[inline]
    pub fn local_port_of_core(&self, core: CoreId) -> u8 {
        (core.0 % self.concentration as u16) as u8
    }

    /// All cores attached to `node`.
    pub fn cores_of_router(&self, node: NodeId) -> impl Iterator<Item = CoreId> {
        let base = node.0 * self.concentration as u16;
        (base..base + self.concentration as u16).map(CoreId)
    }

    /// The neighbour of `node` in `dir`, if it exists under this topology.
    #[inline]
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        self.neighbors[node.index()][dir.index()]
    }

    /// The outgoing link of `node` in `dir`, if the neighbour exists.
    #[inline]
    pub fn link_out(&self, node: NodeId, dir: Direction) -> Option<LinkId> {
        self.link_ids[node.index()][dir.index()]
    }

    /// The `(source router, direction)` pair of a link.
    #[inline]
    pub fn link_source(&self, link: LinkId) -> (NodeId, Direction) {
        self.link_ends[link.index()]
    }

    /// The router a link delivers into.
    #[inline]
    pub fn link_dest(&self, link: LinkId) -> NodeId {
        let (src, dir) = self.link_source(link);
        self.neighbor(src, dir)
            .expect("link always targets an existing neighbour")
    }

    /// Iterate over every link id.
    pub fn all_links(&self) -> impl Iterator<Item = LinkId> {
        (0..self.links() as u16).map(LinkId)
    }

    /// Hop distance between two routers under minimal routing. On a torus
    /// each axis takes the shorter way around the ring; on a degraded mesh
    /// this is the full-mesh Manhattan distance — a lower bound the latency
    /// models use as a locality weight, not an exact path length.
    #[inline]
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> u32 {
        let (ca, cb) = (self.coord_of(a), self.coord_of(b));
        match self.topology {
            Topology::Torus => {
                let dx = ca.x.abs_diff(cb.x);
                let dy = ca.y.abs_diff(cb.y);
                dx.min(self.width - dx) as u32 + dy.min(self.height - dy) as u32
            }
            _ => ca.manhattan(cb),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_has_16_routers_64_cores_48_links() {
        let m = Mesh::paper();
        assert_eq!(m.routers(), 16);
        assert_eq!(m.cores(), 64);
        assert_eq!(m.links(), 48);
    }

    #[test]
    fn coordinates_roundtrip() {
        let m = Mesh::paper();
        for r in 0..16u16 {
            let n = NodeId(r);
            assert_eq!(m.node_at(m.coord_of(n)), n);
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let m = Mesh::paper();
        for r in 0..16u16 {
            let n = NodeId(r);
            for dir in Direction::ALL {
                if let Some(nb) = m.neighbor(n, dir) {
                    assert_eq!(m.neighbor(nb, dir.opposite()), Some(n));
                }
            }
        }
    }

    #[test]
    fn corner_routers_have_two_links_edges_three_center_four() {
        let m = Mesh::paper();
        let count = |n: NodeId| {
            Direction::ALL
                .iter()
                .filter(|d| m.link_out(n, **d).is_some())
                .count()
        };
        assert_eq!(count(m.node_at(Coord::new(0, 0))), 2);
        assert_eq!(count(m.node_at(Coord::new(1, 0))), 3);
        assert_eq!(count(m.node_at(Coord::new(1, 1))), 4);
    }

    #[test]
    fn links_partition_to_source_direction() {
        let m = Mesh::paper();
        for l in m.all_links() {
            let (src, dir) = m.link_source(l);
            assert_eq!(m.link_out(src, dir), Some(l));
            let dst = m.link_dest(l);
            assert_eq!(m.neighbor(src, dir), Some(dst));
        }
    }

    #[test]
    fn core_to_router_mapping() {
        let m = Mesh::paper();
        assert_eq!(m.router_of_core(CoreId(0)), NodeId(0));
        assert_eq!(m.router_of_core(CoreId(3)), NodeId(0));
        assert_eq!(m.router_of_core(CoreId(4)), NodeId(1));
        assert_eq!(m.router_of_core(CoreId(63)), NodeId(15));
        assert_eq!(m.local_port_of_core(CoreId(6)), 2);
        let cores: Vec<_> = m.cores_of_router(NodeId(2)).collect();
        assert_eq!(cores, vec![CoreId(8), CoreId(9), CoreId(10), CoreId(11)]);
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 3)), 6);
        assert_eq!(Coord::new(2, 1).manhattan(Coord::new(2, 1)), 0);
    }

    #[test]
    fn research_scale_meshes_accepted() {
        // DL2Fence-scale meshes must construct: 16×16 and 32×32.
        let m16 = Mesh::new(16, 16, 1);
        assert_eq!(m16.routers(), 256);
        assert_eq!(m16.links(), 2 * 2 * 16 * 15);
        let m32 = Mesh::new(32, 32, 1);
        assert_eq!(m32.routers(), 1024);
        assert_eq!(m32.links(), 2 * 2 * 32 * 31);
        // Link ids must stay within LinkId's u16 range at the cap.
        let n = m32.node_at(Coord::new(31, 31));
        assert_eq!(n, NodeId(1023));
        assert_eq!(m32.coord_of(n), Coord::new(31, 31));
    }

    #[test]
    #[should_panic(expected = "at most 4096 routers")]
    fn mesh_larger_than_4096_routers_rejected() {
        Mesh::new(65, 64, 1);
    }

    #[test]
    fn torus_gives_every_router_four_links() {
        let t = Mesh::new_torus(4, 4, 4);
        assert_eq!(t.routers(), 16);
        assert_eq!(t.links(), 64);
        for r in 0..16u16 {
            let n = NodeId(r);
            for dir in Direction::ALL {
                let nb = t.neighbor(n, dir).expect("torus routers have 4 neighbours");
                assert_eq!(t.neighbor(nb, dir.opposite()), Some(n), "wrap symmetric");
            }
        }
        // The eastern wrap: (3,0) → (0,0).
        assert_eq!(
            t.neighbor(t.node_at(Coord::new(3, 0)), Direction::East),
            Some(t.node_at(Coord::new(0, 0)))
        );
        // Northern wrap: (1,3) → (1,0).
        assert_eq!(
            t.neighbor(t.node_at(Coord::new(1, 3)), Direction::North),
            Some(t.node_at(Coord::new(1, 0)))
        );
    }

    #[test]
    fn torus_hop_distance_takes_the_short_way_around() {
        let t = Mesh::new_torus(4, 4, 1);
        let m = Mesh::new(4, 4, 1);
        let (a, b) = (t.node_at(Coord::new(0, 0)), t.node_at(Coord::new(3, 3)));
        assert_eq!(t.hop_distance(a, b), 2, "one wrap hop per axis");
        assert_eq!(m.hop_distance(a, b), 6, "mesh distance unchanged");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn one_wide_torus_rejected() {
        Mesh::new_torus(1, 4, 1);
    }

    #[test]
    fn degraded_removal_is_symmetric_and_normalized() {
        // Remove the (5 ↔ 6) adjacency, named from its *western* endpoint
        // going East and, redundantly, from its eastern endpoint going
        // West: both normalize to the same canonical pair.
        let d = Mesh::new_degraded(
            4,
            4,
            1,
            &[
                (NodeId(5), Direction::East),
                (NodeId(6), Direction::West),
                (NodeId(9), Direction::North),
            ],
        );
        assert_eq!(d.neighbor(NodeId(5), Direction::East), None);
        assert_eq!(d.neighbor(NodeId(6), Direction::West), None);
        assert_eq!(d.neighbor(NodeId(9), Direction::North), None);
        assert_eq!(d.neighbor(NodeId(13), Direction::South), None);
        assert_eq!(d.links(), 48 - 4, "two adjacencies = four directed links");
        match d.topology() {
            Topology::Degraded { removed } => {
                assert_eq!(
                    removed,
                    &vec![(NodeId(5), Direction::East), (NodeId(9), Direction::North)]
                );
            }
            other => panic!("expected degraded, got {other:?}"),
        }
        assert!(d.connected());
        // Untouched adjacencies keep their symmetry.
        assert_eq!(d.neighbor(NodeId(5), Direction::West), Some(NodeId(4)));
        assert_eq!(d.neighbor(NodeId(4), Direction::East), Some(NodeId(5)));
    }

    #[test]
    fn degraded_can_disconnect_and_connected_detects_it() {
        // Cut both adjacencies of corner router 0 on a 2×2 mesh.
        let d = Mesh::new_degraded(
            2,
            2,
            1,
            &[(NodeId(0), Direction::East), (NodeId(0), Direction::North)],
        );
        assert!(!d.connected());
        assert!(Mesh::paper().connected());
        assert!(Mesh::new_torus(4, 4, 1).connected());
    }

    #[test]
    fn plain_mesh_debug_rendering_is_unchanged_by_the_topology_field() {
        // The simulator's config hash fingerprints `Debug` text; a plain
        // mesh must render exactly as it did before topologies existed
        // (no `topology`/`neighbors` fields), while a torus must differ.
        let m = format!("{:?}", Mesh::new(2, 1, 1));
        assert_eq!(
            m,
            "Mesh { width: 2, height: 1, concentration: 1, \
             link_ids: [[Some(LinkId(0)), None, None, None], \
             [None, Some(LinkId(1)), None, None]], \
             link_ends: [(NodeId(0), East), (NodeId(1), West)] }"
        );
        let t = format!("{:?}", Mesh::new_torus(2, 2, 1));
        assert!(t.contains("topology: Torus"), "{t}");
    }

    #[test]
    fn port_index_roundtrip() {
        for i in 0..8 {
            assert_eq!(Port::from_index(i).index(), i);
        }
        assert!(Port::Local(0).is_local());
        assert!(!Port::Net(Direction::East).is_local());
    }
}
