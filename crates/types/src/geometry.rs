//! Mesh geometry: coordinates, directions, ports, and link numbering.
//!
//! The evaluation platform is a `k × k` 2-D mesh (4×4 in the paper) with a
//! concentration factor `c` (4 cores per router). Every adjacent router pair
//! is joined by **two unidirectional links**, one per direction; [`Mesh`]
//! assigns each a stable [`LinkId`] so trojans, fault injectors, and
//! statistics can all name "the +x link out of router 5" unambiguously.

use crate::ids::{CoreId, LinkId, NodeId};

/// A router position in the mesh. `x` grows eastward, `y` grows northward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column (grows eastward).
    pub x: u8,
    /// Row (grows northward).
    pub y: u8,
}

impl Coord {
    #[inline]
    /// A new coordinate.
    pub fn new(x: u8, y: u8) -> Self {
        Self { x, y }
    }

    /// Manhattan (hop) distance between two router positions.
    #[inline]
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

/// One of the four mesh directions. The paper labels these ±x / ±y; we use
/// compass names with East = +x and North = +y.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Direction {
    /// Toward +x.
    East,
    /// Toward -x.
    West,
    /// Toward +y.
    North,
    /// Toward -y.
    South,
}

impl Direction {
    /// All directions in a fixed iteration order (matches port numbering).
    pub const ALL: [Direction; 4] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
    ];

    /// The direction a flit travels on the reverse link.
    #[inline]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
        }
    }

    /// Unit step in this direction as `(dx, dy)`.
    #[inline]
    pub fn delta(self) -> (i8, i8) {
        match self {
            Direction::East => (1, 0),
            Direction::West => (-1, 0),
            Direction::North => (0, 1),
            Direction::South => (0, -1),
        }
    }

    /// Stable small index (used for port arrays).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
        }
    }
}

/// A router port: either one of the four network directions or a local
/// (core injection/ejection) port. With concentration 4 each router has four
/// local ports, indexed `0..4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Port {
    /// Network port facing the given direction.
    Net(Direction),
    /// Local port for the `n`-th concentrated core on this router.
    Local(u8),
}

impl Port {
    /// Dense index for port arrays: network ports first (0..4), then locals.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Port::Net(d) => d.index(),
            Port::Local(n) => 4 + n as usize,
        }
    }

    /// Inverse of [`Port::index`].
    #[inline]
    pub fn from_index(i: usize) -> Port {
        match i {
            0 => Port::Net(Direction::East),
            1 => Port::Net(Direction::West),
            2 => Port::Net(Direction::North),
            3 => Port::Net(Direction::South),
            n => Port::Local((n - 4) as u8),
        }
    }

    /// Whether this is a local (core) port.
    #[inline]
    pub fn is_local(self) -> bool {
        matches!(self, Port::Local(_))
    }
}

/// Geometry of a concentrated 2-D mesh.
///
/// Link numbering: for every router in row-major order and every direction in
/// [`Direction::ALL`] order, the outgoing link (if the neighbour exists) gets
/// the next [`LinkId`]. A 4×4 mesh therefore has 48 links, ids `0..48`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    width: u8,
    height: u8,
    concentration: u8,
    /// `link_ids[router][direction] == Some(id)` when the neighbour exists.
    link_ids: Vec<[Option<LinkId>; 4]>,
    /// Reverse map: link id → (source router, direction).
    link_ends: Vec<(NodeId, Direction)>,
}

impl Mesh {
    /// Build a `width × height` mesh with `concentration` cores per router.
    ///
    /// # Panics
    /// Panics if the mesh has more than 4096 routers (LinkId stays a u16 and
    /// `NodeId` a u16) or any dimension is zero. Meshes beyond the paper's
    /// 16 routers alias src/dest in the 4-bit wire header fields (see
    /// `Header::pack`); the simulator routes on the logical header, so this
    /// only affects on-wire byte patterns, exactly as a real implementation
    /// reusing the paper's 42-bit header would behave.
    pub fn new(width: u8, height: u8, concentration: u8) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be nonzero");
        assert!(
            (width as usize) * (height as usize) <= 4096,
            "simulator ids are 16-bit; at most 4096 routers"
        );
        assert!(concentration >= 1, "concentration must be at least 1");
        let routers = width as usize * height as usize;
        let mut link_ids = vec![[None; 4]; routers];
        let mut link_ends = Vec::new();
        for (r, ids) in link_ids.iter_mut().enumerate() {
            let node = NodeId(r as u16);
            for dir in Direction::ALL {
                let here = Self::coord_of_raw(width, r);
                let (dx, dy) = dir.delta();
                let nx = here.x as i16 + dx as i16;
                let ny = here.y as i16 + dy as i16;
                if nx < 0 || ny < 0 || nx >= width as i16 || ny >= height as i16 {
                    continue;
                }
                let id = LinkId(link_ends.len() as u16);
                ids[dir.index()] = Some(id);
                link_ends.push((node, dir));
            }
        }
        Self {
            width,
            height,
            concentration,
            link_ids,
            link_ends,
        }
    }

    /// The paper's evaluation platform: 4×4 mesh, 4 cores per router.
    pub fn paper() -> Self {
        Self::new(4, 4, 4)
    }

    #[inline]
    /// Mesh width in routers.
    pub fn width(&self) -> u8 {
        self.width
    }

    #[inline]
    /// Mesh height in routers.
    pub fn height(&self) -> u8 {
        self.height
    }

    #[inline]
    /// Cores per router.
    pub fn concentration(&self) -> u8 {
        self.concentration
    }

    /// Number of routers.
    #[inline]
    pub fn routers(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Number of cores (`routers × concentration`).
    #[inline]
    pub fn cores(&self) -> usize {
        self.routers() * self.concentration as usize
    }

    /// Number of unidirectional router-to-router links.
    #[inline]
    pub fn links(&self) -> usize {
        self.link_ends.len()
    }

    fn coord_of_raw(width: u8, index: usize) -> Coord {
        Coord::new(
            (index % width as usize) as u8,
            (index / width as usize) as u8,
        )
    }

    /// Position of a router.
    #[inline]
    pub fn coord_of(&self, node: NodeId) -> Coord {
        Self::coord_of_raw(self.width, node.index())
    }

    /// Router at a position.
    #[inline]
    pub fn node_at(&self, c: Coord) -> NodeId {
        debug_assert!(c.x < self.width && c.y < self.height);
        NodeId(c.y as u16 * self.width as u16 + c.x as u16)
    }

    /// The router a core is attached to (cores are numbered router-major).
    #[inline]
    pub fn router_of_core(&self, core: CoreId) -> NodeId {
        NodeId(core.0 / self.concentration as u16)
    }

    /// The local port index of a core on its router.
    #[inline]
    pub fn local_port_of_core(&self, core: CoreId) -> u8 {
        (core.0 % self.concentration as u16) as u8
    }

    /// All cores attached to `node`.
    pub fn cores_of_router(&self, node: NodeId) -> impl Iterator<Item = CoreId> {
        let base = node.0 * self.concentration as u16;
        (base..base + self.concentration as u16).map(CoreId)
    }

    /// The neighbour of `node` in `dir`, if it exists.
    #[inline]
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord_of(node);
        let (dx, dy) = dir.delta();
        let nx = c.x as i16 + dx as i16;
        let ny = c.y as i16 + dy as i16;
        if nx < 0 || ny < 0 || nx >= self.width as i16 || ny >= self.height as i16 {
            None
        } else {
            Some(self.node_at(Coord::new(nx as u8, ny as u8)))
        }
    }

    /// The outgoing link of `node` in `dir`, if the neighbour exists.
    #[inline]
    pub fn link_out(&self, node: NodeId, dir: Direction) -> Option<LinkId> {
        self.link_ids[node.index()][dir.index()]
    }

    /// The `(source router, direction)` pair of a link.
    #[inline]
    pub fn link_source(&self, link: LinkId) -> (NodeId, Direction) {
        self.link_ends[link.index()]
    }

    /// The router a link delivers into.
    #[inline]
    pub fn link_dest(&self, link: LinkId) -> NodeId {
        let (src, dir) = self.link_source(link);
        self.neighbor(src, dir)
            .expect("link always targets an existing neighbour")
    }

    /// Iterate over every link id.
    pub fn all_links(&self) -> impl Iterator<Item = LinkId> {
        (0..self.links() as u16).map(LinkId)
    }

    /// Hop distance between two routers under minimal routing.
    #[inline]
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.coord_of(a).manhattan(self.coord_of(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_has_16_routers_64_cores_48_links() {
        let m = Mesh::paper();
        assert_eq!(m.routers(), 16);
        assert_eq!(m.cores(), 64);
        assert_eq!(m.links(), 48);
    }

    #[test]
    fn coordinates_roundtrip() {
        let m = Mesh::paper();
        for r in 0..16u16 {
            let n = NodeId(r);
            assert_eq!(m.node_at(m.coord_of(n)), n);
        }
    }

    #[test]
    fn neighbors_are_symmetric() {
        let m = Mesh::paper();
        for r in 0..16u16 {
            let n = NodeId(r);
            for dir in Direction::ALL {
                if let Some(nb) = m.neighbor(n, dir) {
                    assert_eq!(m.neighbor(nb, dir.opposite()), Some(n));
                }
            }
        }
    }

    #[test]
    fn corner_routers_have_two_links_edges_three_center_four() {
        let m = Mesh::paper();
        let count = |n: NodeId| {
            Direction::ALL
                .iter()
                .filter(|d| m.link_out(n, **d).is_some())
                .count()
        };
        assert_eq!(count(m.node_at(Coord::new(0, 0))), 2);
        assert_eq!(count(m.node_at(Coord::new(1, 0))), 3);
        assert_eq!(count(m.node_at(Coord::new(1, 1))), 4);
    }

    #[test]
    fn links_partition_to_source_direction() {
        let m = Mesh::paper();
        for l in m.all_links() {
            let (src, dir) = m.link_source(l);
            assert_eq!(m.link_out(src, dir), Some(l));
            let dst = m.link_dest(l);
            assert_eq!(m.neighbor(src, dir), Some(dst));
        }
    }

    #[test]
    fn core_to_router_mapping() {
        let m = Mesh::paper();
        assert_eq!(m.router_of_core(CoreId(0)), NodeId(0));
        assert_eq!(m.router_of_core(CoreId(3)), NodeId(0));
        assert_eq!(m.router_of_core(CoreId(4)), NodeId(1));
        assert_eq!(m.router_of_core(CoreId(63)), NodeId(15));
        assert_eq!(m.local_port_of_core(CoreId(6)), 2);
        let cores: Vec<_> = m.cores_of_router(NodeId(2)).collect();
        assert_eq!(cores, vec![CoreId(8), CoreId(9), CoreId(10), CoreId(11)]);
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 3)), 6);
        assert_eq!(Coord::new(2, 1).manhattan(Coord::new(2, 1)), 0);
    }

    #[test]
    fn research_scale_meshes_accepted() {
        // DL2Fence-scale meshes must construct: 16×16 and 32×32.
        let m16 = Mesh::new(16, 16, 1);
        assert_eq!(m16.routers(), 256);
        assert_eq!(m16.links(), 2 * 2 * 16 * 15);
        let m32 = Mesh::new(32, 32, 1);
        assert_eq!(m32.routers(), 1024);
        assert_eq!(m32.links(), 2 * 2 * 32 * 31);
        // Link ids must stay within LinkId's u16 range at the cap.
        let n = m32.node_at(Coord::new(31, 31));
        assert_eq!(n, NodeId(1023));
        assert_eq!(m32.coord_of(n), Coord::new(31, 31));
    }

    #[test]
    #[should_panic(expected = "at most 4096 routers")]
    fn mesh_larger_than_4096_routers_rejected() {
        Mesh::new(65, 64, 1);
    }

    #[test]
    fn port_index_roundtrip() {
        for i in 0..8 {
            assert_eq!(Port::from_index(i).index(), i);
        }
        assert!(Port::Local(0).is_local());
        assert!(!Port::Net(Direction::East).is_local());
    }
}
