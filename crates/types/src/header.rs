//! Packet header and its wire layout.
//!
//! The TASP trojan compares a *fraction of the link width* against its
//! programmed target, so the exact bit positions of each field on head flits
//! matter. We adopt the field widths the paper reports for its target
//! comparators: src 4 bits, dest 4 bits, VC 2 bits, memory address 32 bits —
//! 42 bits of "full" target material — and place them contiguously from bit 0
//! of the 64-bit flit word. The remaining bits carry the thread id and the
//! packet length, which the paper's comparator does not inspect.

use crate::ids::{NodeId, VcId};

/// Bit layout of a head flit's data word. All offsets/widths in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeaderLayout;

impl HeaderLayout {
    /// Bit offset of the source-router field.
    pub const SRC_OFFSET: u32 = 0;
    /// Width of the source-router field.
    pub const SRC_BITS: u32 = 4;
    /// Bit offset of the destination-router field.
    pub const DEST_OFFSET: u32 = 4;
    /// Width of the destination-router field.
    pub const DEST_BITS: u32 = 4;
    /// Bit offset of the VC-class field.
    pub const VC_OFFSET: u32 = 8;
    /// Width of the VC-class field.
    pub const VC_BITS: u32 = 2;
    /// Bit offset of the memory-address field.
    pub const MEM_OFFSET: u32 = 10;
    /// Width of the memory-address field.
    pub const MEM_BITS: u32 = 32;
    /// Total width of the paper's "full" target (src+dest+vc+mem).
    pub const FULL_BITS: u32 = 42;
    /// Bit offset of the thread-id field (outside the comparator window).
    pub const THREAD_OFFSET: u32 = 42;
    /// Width of the thread-id field.
    pub const THREAD_BITS: u32 = 6;
    /// Bit offset of the packet-length field.
    pub const LEN_OFFSET: u32 = 48;
    /// Width of the packet-length field.
    pub const LEN_BITS: u32 = 8;

    /// Mask covering `bits` starting at `offset`.
    #[inline]
    pub const fn mask(offset: u32, bits: u32) -> u64 {
        if bits == 64 {
            u64::MAX
        } else {
            ((1u64 << bits) - 1) << offset
        }
    }
}

/// Logical packet header carried by head flits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Header {
    /// Source router.
    pub src: NodeId,
    /// Destination router.
    pub dest: NodeId,
    /// Virtual-channel class requested at injection.
    pub vc: VcId,
    /// Memory address the request refers to (the trojan's widest target).
    pub mem_addr: u32,
    /// Thread/process id of the issuing context.
    pub thread: u8,
    /// Packet length in flits.
    pub len: u8,
}

impl Header {
    /// Pack into the head-flit wire word. Inverse of [`Header::unpack`] for
    /// headers whose fields fit the paper's widths.
    ///
    /// Each field is masked to its paper-mandated width: on meshes larger
    /// than 16 routers the 4-bit src/dest wire fields alias (`id mod 16`),
    /// exactly as silicon reusing the 42-bit header format would. Routing
    /// and delivery always use the logical [`crate::Flit::header`] copy, so
    /// aliasing only affects on-wire byte patterns (and thus what a TASP
    /// comparator sees), never where a packet goes.
    pub fn pack(&self) -> u64 {
        debug_assert!(self.vc.0 < 4, "vc must fit 2 bits");
        debug_assert!(self.thread < 64, "thread must fit 6 bits");
        let field = |v: u64, off: u32, bits: u32| (v & ((1u64 << bits) - 1)) << off;
        field(
            self.src.0 as u64,
            HeaderLayout::SRC_OFFSET,
            HeaderLayout::SRC_BITS,
        ) | field(
            self.dest.0 as u64,
            HeaderLayout::DEST_OFFSET,
            HeaderLayout::DEST_BITS,
        ) | field(
            self.vc.0 as u64,
            HeaderLayout::VC_OFFSET,
            HeaderLayout::VC_BITS,
        ) | field(
            self.mem_addr as u64,
            HeaderLayout::MEM_OFFSET,
            HeaderLayout::MEM_BITS,
        ) | field(
            self.thread as u64,
            HeaderLayout::THREAD_OFFSET,
            HeaderLayout::THREAD_BITS,
        ) | field(
            self.len as u64,
            HeaderLayout::LEN_OFFSET,
            HeaderLayout::LEN_BITS,
        )
    }

    /// Decode a head-flit wire word.
    pub fn unpack(word: u64) -> Header {
        let field = |off: u32, bits: u32| (word >> off) & ((1u64 << bits) - 1);
        Header {
            src: NodeId(field(HeaderLayout::SRC_OFFSET, HeaderLayout::SRC_BITS) as u16),
            dest: NodeId(field(HeaderLayout::DEST_OFFSET, HeaderLayout::DEST_BITS) as u16),
            vc: VcId(field(HeaderLayout::VC_OFFSET, HeaderLayout::VC_BITS) as u8),
            mem_addr: field(HeaderLayout::MEM_OFFSET, HeaderLayout::MEM_BITS) as u32,
            thread: field(HeaderLayout::THREAD_OFFSET, HeaderLayout::THREAD_BITS) as u8,
            len: field(HeaderLayout::LEN_OFFSET, HeaderLayout::LEN_BITS) as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn layout_fields_are_disjoint_and_cover_low_56_bits() {
        let fields = [
            (HeaderLayout::SRC_OFFSET, HeaderLayout::SRC_BITS),
            (HeaderLayout::DEST_OFFSET, HeaderLayout::DEST_BITS),
            (HeaderLayout::VC_OFFSET, HeaderLayout::VC_BITS),
            (HeaderLayout::MEM_OFFSET, HeaderLayout::MEM_BITS),
            (HeaderLayout::THREAD_OFFSET, HeaderLayout::THREAD_BITS),
            (HeaderLayout::LEN_OFFSET, HeaderLayout::LEN_BITS),
        ];
        let mut acc = 0u64;
        for (off, bits) in fields {
            let m = HeaderLayout::mask(off, bits);
            assert_eq!(acc & m, 0, "field at offset {off} overlaps");
            acc |= m;
        }
        assert_eq!(acc, (1u64 << 56) - 1);
    }

    #[test]
    fn full_target_is_42_bits() {
        assert_eq!(
            HeaderLayout::SRC_BITS
                + HeaderLayout::DEST_BITS
                + HeaderLayout::VC_BITS
                + HeaderLayout::MEM_BITS,
            HeaderLayout::FULL_BITS
        );
    }

    #[test]
    fn pack_unpack_example() {
        let h = Header {
            src: NodeId(5),
            dest: NodeId(12),
            vc: VcId(3),
            mem_addr: 0xDEAD_BEEF,
            thread: 17,
            len: 4,
        };
        assert_eq!(Header::unpack(h.pack()), h);
    }

    proptest! {
        #[test]
        fn pack_unpack_roundtrips(src in 0u16..16, dest in 0u16..16, vc in 0u8..4,
                                  mem in any::<u32>(), thread in 0u8..64, len in any::<u8>()) {
            let h = Header { src: NodeId(src), dest: NodeId(dest), vc: VcId(vc),
                             mem_addr: mem, thread, len };
            prop_assert_eq!(Header::unpack(h.pack()), h);
        }

        #[test]
        fn large_mesh_ids_alias_mod_16_on_the_wire(src in 0u16..4096, dest in 0u16..4096) {
            // On >16-router meshes the wire fields keep the paper's 4-bit
            // widths; ids alias mod 16 without disturbing neighbouring fields.
            let h = Header { src: NodeId(src), dest: NodeId(dest), vc: VcId(1),
                             mem_addr: 0xABCD_1234, thread: 9, len: 5 };
            let round = Header::unpack(h.pack());
            prop_assert_eq!(round.src, NodeId(src % 16));
            prop_assert_eq!(round.dest, NodeId(dest % 16));
            prop_assert_eq!(round.vc, h.vc);
            prop_assert_eq!(round.mem_addr, h.mem_addr);
            prop_assert_eq!(round.thread, h.thread);
            prop_assert_eq!(round.len, h.len);
        }

        #[test]
        fn unpack_masks_only_relevant_bits(word in any::<u64>()) {
            // Unpacking then re-packing must preserve the low 56 bits exactly.
            let h = Header::unpack(word);
            prop_assert_eq!(h.pack() & ((1u64 << 56) - 1), word & ((1u64 << 56) - 1));
        }
    }
}
