//! Strongly-typed identifiers for network entities.
//!
//! All identifiers are small newtypes over integers so they pack tightly into
//! hot simulator structures (see the type-size guidance in the Rust
//! Performance Book) while remaining impossible to confuse with one another.

/// Identifies a router in the network. For the paper's 4×4 mesh this is
/// `0..16`; larger research meshes (16×16, 32×32) push it past a byte, so
/// the simulator-side id is 16 bits. The *wire* header still encodes the
/// paper's 4-bit field — see `Header::pack` for the aliasing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Raw index, convenient for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies a core (processing element). With a concentration of 4 on a
/// 16-router mesh this is `0..64`; a 32×32 mesh at the same concentration
/// reaches 4096, hence 16 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u16);

impl CoreId {
    #[inline]
    /// Raw index, convenient for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifies one *unidirectional* router-to-router link. The 4×4 mesh has
/// 48 of them (24 neighbour pairs × 2 directions), matching the paper's
/// "TASP on all 48 links" worst case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u16);

impl LinkId {
    #[inline]
    /// Raw index, convenient for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A virtual-channel index within a port (`0..4` in the paper configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VcId(pub u8);

impl VcId {
    #[inline]
    /// Raw index, convenient for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Globally unique packet identifier, assigned at injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

/// Globally unique flit identifier, assigned at packetisation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlitId(pub u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(NodeId(3) < NodeId(7));
        assert_eq!(NodeId(5).index(), 5);
        assert_eq!(CoreId(63).index(), 63);
        assert_eq!(LinkId(47).index(), 47);
        assert_eq!(VcId(2).index(), 2);
    }

    #[test]
    fn ids_are_small() {
        // Hot identifiers must stay register-sized.
        assert_eq!(std::mem::size_of::<NodeId>(), 2);
        assert_eq!(std::mem::size_of::<CoreId>(), 2);
        assert_eq!(std::mem::size_of::<VcId>(), 1);
        assert_eq!(std::mem::size_of::<LinkId>(), 2);
        assert_eq!(std::mem::size_of::<PacketId>(), 8);
    }
}
