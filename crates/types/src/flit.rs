//! Flits — the atomic units of link traversal.
//!
//! A flit carries a 64-bit wire word. For head (and single-flit) packets the
//! word is the packed [`Header`]; for body/tail flits it is payload data.
//! Every flit also keeps *logical* metadata (ids, kind, header copy) that in
//! real hardware would be reconstructed at the receiver; the simulator uses
//! it for routing, statistics, and retransmission bookkeeping. Only the wire
//! word is visible to the ECC layer and to the TASP trojan.

use crate::header::Header;
use crate::ids::{FlitId, PacketId};

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit of a multi-flit packet; carries the header on the wire.
    Head,
    /// Interior flit.
    Body,
    /// Last flit of a multi-flit packet.
    Tail,
    /// Entire single-flit packet (header on the wire).
    Single,
}

impl FlitKind {
    /// Head and Single flits carry the packed header as their wire word.
    #[inline]
    pub fn carries_header(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::Single)
    }

    /// Tail and Single flits close out the packet (free the VC).
    #[inline]
    pub fn closes_packet(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }
}

/// One flit. Cheap to copy; the simulator moves these by value through
/// buffers, the crossbar, and links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Globally unique flit id.
    pub id: FlitId,
    /// Owning packet.
    pub packet: PacketId,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Sequence number within the packet (head = 0).
    pub seq: u8,
    /// Header of the owning packet. On the wire only head/single flits expose
    /// it; the simulator keeps a copy on every flit for wormhole routing
    /// state and statistics.
    pub header: Header,
    /// The 64-bit word transmitted on the link. Equals `header.pack()` for
    /// header-carrying flits and payload data otherwise.
    pub word: u64,
}

impl Flit {
    /// Construct a header-carrying flit (`Head` or `Single`).
    pub fn head(id: FlitId, packet: PacketId, kind: FlitKind, header: Header) -> Self {
        debug_assert!(kind.carries_header());
        Self {
            id,
            packet,
            kind,
            seq: 0,
            header,
            word: header.pack(),
        }
    }

    /// Construct a payload flit (`Body` or `Tail`).
    pub fn payload(
        id: FlitId,
        packet: PacketId,
        kind: FlitKind,
        seq: u8,
        header: Header,
        word: u64,
    ) -> Self {
        debug_assert!(!kind.carries_header());
        debug_assert!(seq > 0, "payload flits follow the head");
        Self {
            id,
            packet,
            kind,
            seq,
            header,
            word,
        }
    }

    /// The word a deep-packet-inspection trojan sees on the wire.
    #[inline]
    pub fn wire_word(&self) -> u64 {
        self.word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, VcId};

    fn hdr() -> Header {
        Header {
            src: NodeId(1),
            dest: NodeId(9),
            vc: VcId(0),
            mem_addr: 0x1000,
            thread: 3,
            len: 4,
        }
    }

    #[test]
    fn head_flit_wire_word_is_packed_header() {
        let f = Flit::head(FlitId(0), PacketId(0), FlitKind::Head, hdr());
        assert_eq!(f.wire_word(), hdr().pack());
        assert_eq!(Header::unpack(f.wire_word()), hdr());
    }

    #[test]
    fn kind_predicates() {
        assert!(FlitKind::Head.carries_header());
        assert!(FlitKind::Single.carries_header());
        assert!(!FlitKind::Body.carries_header());
        assert!(FlitKind::Tail.closes_packet());
        assert!(FlitKind::Single.closes_packet());
        assert!(!FlitKind::Head.closes_packet());
    }

    #[test]
    fn payload_flit_carries_data_word() {
        let f = Flit::payload(FlitId(7), PacketId(2), FlitKind::Body, 1, hdr(), 0xABCD);
        assert_eq!(f.wire_word(), 0xABCD);
        assert_eq!(f.seq, 1);
    }

    #[test]
    fn flit_is_compact() {
        // Flits are moved by value through every pipeline stage; keep them
        // well under the 128-byte memcpy threshold.
        assert!(std::mem::size_of::<Flit>() <= 48);
    }
}
