//! Fundamental Network-on-Chip data types shared by every `htnoc` crate.
//!
//! This crate defines the *logical* representation of on-chip traffic — flits,
//! packets, headers — and the *geometric* representation of a concentrated 2-D
//! mesh — coordinates, directions, ports, links. It is deliberately free of
//! any simulator state so that the trojan, ECC, and mitigation crates can
//! operate on the same vocabulary without depending on the simulator.
//!
//! # Wire format
//!
//! The evaluated system (Boraten & Kodi, IPDPS 2016) uses 64-bit flits
//! protected by a SECDED code on every router-to-router link. Head flits
//! carry the packet header in their low bits using the paper's field widths
//! (src 4, dest 4, vc 2, mem 32 — 42 bits of "full" target material); see
//! [`header`] for the exact layout. The TASP hardware trojan performs deep
//! packet inspection against this wire word, so the layout here is
//! load-bearing for the whole reproduction.

pub mod flit;
pub mod geometry;
pub mod header;
pub mod ids;
pub mod packet;

pub use flit::{Flit, FlitKind};
pub use geometry::{Coord, Direction, Mesh, Port, Topology};
pub use header::{Header, HeaderLayout};
pub use ids::{CoreId, FlitId, LinkId, NodeId, PacketId, VcId};
pub use packet::Packet;

/// Width of the flit data word on a link, in bits (excluding ECC check bits).
pub const FLIT_BITS: usize = 64;
