//! Packets and packetisation into flits.

use crate::flit::{Flit, FlitKind};
use crate::header::Header;
use crate::ids::{FlitId, NodeId, PacketId, VcId};

/// A logical packet prior to packetisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Globally unique packet id.
    pub id: PacketId,
    /// Source router.
    pub src: NodeId,
    /// Destination router.
    pub dest: NodeId,
    /// Requested VC class at injection.
    pub vc: VcId,
    /// Memory address the request refers to.
    pub mem_addr: u32,
    /// Issuing thread/process id.
    pub thread: u8,
    /// Length in flits (≥ 1).
    pub len: u8,
    /// Cycle the packet was created (for latency accounting).
    pub created_at: u64,
    /// Payload words for flits 1..len (body/tail). May be shorter than
    /// `len - 1`; missing words default to a seq-derived pattern.
    pub payload: Vec<u64>,
}

impl Packet {
    /// Convenience constructor with synthetic payload.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: PacketId,
        src: NodeId,
        dest: NodeId,
        vc: VcId,
        mem_addr: u32,
        thread: u8,
        len: u8,
        created_at: u64,
    ) -> Self {
        assert!(len >= 1, "packets are at least one flit long");
        Self {
            id,
            src,
            dest,
            vc,
            mem_addr,
            thread,
            len,
            created_at,
            payload: Vec::new(),
        }
    }

    /// The header carried by this packet's head flit.
    pub fn header(&self) -> Header {
        Header {
            src: self.src,
            dest: self.dest,
            vc: self.vc,
            mem_addr: self.mem_addr,
            thread: self.thread,
            len: self.len,
        }
    }

    /// Split the packet into flits. Flit ids are allocated from `next_flit`,
    /// which is advanced past the ids consumed.
    pub fn packetize(&self, next_flit: &mut u64) -> Vec<Flit> {
        let mut flits = Vec::with_capacity(self.len as usize);
        self.packetize_into(next_flit, &mut flits);
        flits
    }

    /// Allocation-free [`Packet::packetize`]: flits are appended to
    /// `flits` (not cleared first), so the injection hot path can reuse
    /// one scratch buffer across packets.
    pub fn packetize_into(&self, next_flit: &mut u64, flits: &mut Vec<Flit>) {
        let header = self.header();
        let mut take_id = || {
            let id = FlitId(*next_flit);
            *next_flit += 1;
            id
        };
        if self.len == 1 {
            flits.push(Flit::head(take_id(), self.id, FlitKind::Single, header));
            return;
        }
        flits.push(Flit::head(take_id(), self.id, FlitKind::Head, header));
        for seq in 1..self.len {
            let kind = if seq == self.len - 1 {
                FlitKind::Tail
            } else {
                FlitKind::Body
            };
            let word = self
                .payload
                .get(seq as usize - 1)
                .copied()
                .unwrap_or_else(|| synth_word(self.id, seq));
            flits.push(Flit::payload(take_id(), self.id, kind, seq, header, word));
        }
    }
}

/// Deterministic synthetic payload word (splitmix64 over packet id and seq),
/// so payload bits look random to the trojan without needing an RNG.
fn synth_word(packet: PacketId, seq: u8) -> u64 {
    let mut z = packet
        .0
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(seq as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(len: u8) -> Packet {
        Packet::new(
            PacketId(42),
            NodeId(0),
            NodeId(15),
            VcId(1),
            0xCAFE,
            7,
            len,
            100,
        )
    }

    #[test]
    fn single_flit_packet() {
        let mut next = 0;
        let flits = pkt(1).packetize(&mut next);
        assert_eq!(flits.len(), 1);
        assert_eq!(flits[0].kind, FlitKind::Single);
        assert_eq!(next, 1);
    }

    #[test]
    fn multi_flit_packet_structure() {
        let mut next = 10;
        let flits = pkt(4).packetize(&mut next);
        assert_eq!(flits.len(), 4);
        assert_eq!(flits[0].kind, FlitKind::Head);
        assert_eq!(flits[1].kind, FlitKind::Body);
        assert_eq!(flits[2].kind, FlitKind::Body);
        assert_eq!(flits[3].kind, FlitKind::Tail);
        assert_eq!(next, 14);
        // Sequence numbers are dense and ids are consecutive.
        for (i, f) in flits.iter().enumerate() {
            assert_eq!(f.seq as usize, i);
            assert_eq!(f.id.0, 10 + i as u64);
            assert_eq!(f.packet, PacketId(42));
        }
    }

    #[test]
    fn explicit_payload_words_are_used() {
        let mut p = pkt(3);
        p.payload = vec![0x1111, 0x2222];
        let mut next = 0;
        let flits = p.packetize(&mut next);
        assert_eq!(flits[1].word, 0x1111);
        assert_eq!(flits[2].word, 0x2222);
    }

    #[test]
    fn synthetic_payload_is_deterministic() {
        let mut a = 0;
        let mut b = 0;
        assert_eq!(pkt(4).packetize(&mut a), pkt(4).packetize(&mut b));
    }

    #[test]
    #[should_panic(expected = "at least one flit")]
    fn zero_length_packet_rejected() {
        pkt(0);
    }
}
