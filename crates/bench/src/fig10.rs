//! Fig. 10 — workload speedup from continuing to use infected links with
//! s2s L-Ob versus rerouting around them (Ariadne), for each application
//! trace at 0 / 5 / 10 / 15 % infected links.
//!
//! Metric: completion time of a fixed injection schedule (warm-up, attack
//! window, drain). Speedup of a strategy = completion(Reroute) /
//! completion(strategy); the rerouting bar is therefore 1.0 by definition
//! and the L-Ob bar shows how much faster the obfuscating network
//! finishes, exactly the comparison the paper's bars make.

use htnoc_core::prelude::*;
use htnoc_core::sweep::par_map;

/// One bar group of Fig. 10.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Application name.
    pub app: &'static str,
    /// Infected-link fraction (0.05 = 5%).
    pub infected_pct: f64,
    /// Workload completion time under each strategy (cycles).
    pub t_lob: u64,
    /// Completion time under rerouting.
    pub t_reroute: u64,
    /// Mean packet latency under each strategy (cycles).
    pub lat_lob: f64,
    /// Mean packet latency under rerouting.
    pub lat_reroute: f64,
    /// The figure's bar: completion(Reroute) / completion(S2sLob) — how
    /// much faster the obfuscating network finishes the same workload.
    /// (Mean latencies are reported alongside; under rerouting they can
    /// inflate far more than completion when detours congest.)
    pub speedup: f64,
}

/// Scenario schedule used for every Fig. 10 cell: the application's
/// communication burst followed by a drain; mean packet latency under
/// each strategy is the figure's speedup basis.
fn scenario(app: AppSpec, strategy: Strategy, infected: Vec<LinkId>, seed: u64) -> Scenario {
    let mut sc = Scenario::paper_default(app, strategy).with_infected(infected);
    sc.seed = seed;
    sc.warmup = 200;
    sc.inject_until = 1000;
    sc.max_cycles = 40_000;
    sc.snapshot_interval = 50;
    sc
}

/// Infected-link sets per app and fraction (the attacker's placement).
pub fn infected_for(app: &AppSpec, fraction: f64, seed: u64) -> Vec<LinkId> {
    let mesh = Mesh::paper();
    let mut model = AppModel::new(app.clone(), mesh.clone(), seed);
    let shares = TrafficMatrix::sample(&mut model, 1500).link_shares_xy(&mesh);
    select_infected(&mesh, &shares, fraction, Some(app.primary))
}

/// Compute the full figure: `apps × fractions` rows, each averaged over
/// `seeds` runs per strategy.
pub fn compute(apps: Vec<AppSpec>, fractions: &[f64], seeds: u64) -> Vec<SpeedupRow> {
    // Build every (app, fraction, seed, strategy) run, fan out in parallel.
    let mut jobs = Vec::new();
    for app in &apps {
        for &frac in fractions {
            for seed in 0..seeds {
                let infected = infected_for(app, frac, 3 + seed);
                jobs.push((
                    app.name,
                    frac,
                    scenario(app.clone(), Strategy::S2sLob, infected.clone(), seed),
                    scenario(app.clone(), Strategy::Reroute, infected, seed),
                ));
            }
        }
    }
    let results = par_map(jobs, None, |(name, frac, lob_sc, rr_sc)| {
        let lob = htnoc_core::run_scenario(&lob_sc);
        let rr = htnoc_core::run_scenario(&rr_sc);
        let cap = lob_sc.max_cycles;
        (
            name,
            frac,
            lob.completion_or_cap(cap),
            rr.completion_or_cap(cap),
            lob.stats.avg_latency(),
            rr.stats.avg_latency(),
        )
    });
    // Aggregate seeds per (app, fraction) cell.
    let mut rows: Vec<SpeedupRow> = Vec::new();
    for (name, frac, t_lob, t_rr, l_lob, l_rr) in results {
        match rows
            .iter_mut()
            .find(|r| r.app == name && r.infected_pct == frac)
        {
            Some(row) => {
                row.t_lob += t_lob;
                row.t_reroute += t_rr;
                row.lat_lob += l_lob;
                row.lat_reroute += l_rr;
            }
            None => rows.push(SpeedupRow {
                app: name,
                infected_pct: frac,
                t_lob,
                t_reroute: t_rr,
                lat_lob: l_lob,
                lat_reroute: l_rr,
                speedup: 0.0,
            }),
        }
    }
    for row in &mut rows {
        row.t_lob /= seeds;
        row.t_reroute /= seeds;
        row.lat_lob /= seeds as f64;
        row.lat_reroute /= seeds as f64;
        row.speedup = row.t_reroute as f64 / row.t_lob as f64;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lob_speedup_grows_with_infection_and_stays_in_band() {
        // One app at two fractions keeps the test affordable; the binary
        // sweeps all four apps.
        let rows = compute(vec![AppSpec::blackscholes()], &[0.0, 0.15], 3);
        assert_eq!(rows.len(), 2);
        let at = |f: f64| rows.iter().find(|r| r.infected_pct == f).unwrap();
        let clean = at(0.0);
        // With no infected links the strategies coincide (speedup ≈ 1).
        assert!(
            (clean.speedup - 1.0).abs() < 0.15,
            "0% infected speedup {}",
            clean.speedup
        );
        let hot = at(0.15);
        assert!(
            hot.speedup > 1.2,
            "L-Ob must clearly beat rerouting at 15% infection: {}",
            hot.speedup
        );
        assert!(hot.speedup < 5.0, "band check: {}", hot.speedup);
    }
}
