//! Fig. 11 — buffer utilisation and router-stall time series for the
//! Blackscholes workload: (a) a single active TASP with no (working)
//! mitigation — e2e obfuscation cannot hide the header target, so the
//! attack proceeds and back-pressure deadlocks the chip; (b) the same
//! period with no trojan.

use htnoc_core::prelude::*;

/// One sample of the Fig. 11/12 series.
#[derive(Debug, Clone, Copy)]
pub struct UtilSample {
    /// Cycles after the TASP kill switch went up (negative = warm-up).
    pub t: i64,
    /// Cycles after the kill switch (negative = warm-up).
    pub input_util: usize,
    /// Flits buffered across network input ports.
    pub output_util: usize,
    /// Flits held in retransmission buffers.
    pub injection_util: usize,
    /// Flits waiting in injection queues.
    pub all_cores_full: usize,
    /// Routers with every core injection queue full.
    pub half_cores_full: usize,
    /// Routers with more than half their cores full.
    pub blocked_port_routers: usize,
    /// Flits delivered during this snapshot interval.
    pub delivered_delta: u64,
    /// Retransmissions issued during this snapshot interval.
    pub retx_delta: u64,
    /// Uncorrectable faults seen during this snapshot interval.
    pub uncorrectable_delta: u64,
}

#[derive(Debug, Clone)]
/// One strategy label plus its utilisation series.
pub struct Fig11Data {
    /// Human-readable series label.
    pub label: &'static str,
    /// The samples, one per snapshot interval.
    pub samples: Vec<UtilSample>,
}

/// Build the Fig. 11 scenario: Blackscholes with one TASP on the hottest
/// link outright (the column link funnelling the upper mesh's requests
/// into the primary — the single placement that maximises disruption,
/// which is what the figure demonstrates), 1500-cycle warm-up, then the
/// attack window.
pub fn scenario(strategy: Strategy, infected_links: usize, horizon: u64) -> Scenario {
    let app = AppSpec::blackscholes();
    let mesh = Mesh::paper();
    let mut model = AppModel::new(app.clone(), mesh.clone(), 7);
    let shares = TrafficMatrix::sample(&mut model, 1500).link_shares_xy(&mesh);
    let infected: Vec<LinkId> = select_infected(&mesh, &shares, 1.0, None)
        .into_iter()
        .take(infected_links)
        .collect();
    let mut sc = Scenario::paper_default(app, strategy).with_infected(infected);
    sc.warmup = 1500;
    sc.inject_until = 1500 + horizon;
    sc.max_cycles = 1500 + horizon;
    sc.snapshot_interval = 10;
    sc
}

/// Run and extract the utilisation series relative to attack start.
pub fn compute(strategy: Strategy, infected_links: usize, horizon: u64) -> Fig11Data {
    let sc = scenario(strategy, infected_links, horizon);
    let warmup = sc.warmup as i64;
    let result = htnoc_core::run_scenario(&sc);
    let label = match (infected_links, &sc.strategy) {
        (0, _) => "no HT",
        (_, Strategy::Unprotected) => "single active TASP, no mitigation",
        (_, Strategy::E2eObfuscation) => "single active TASP, e2e obfuscation (fails)",
        (_, Strategy::S2sLob) => "single active TASP, s2s L-Ob",
        (_, Strategy::Tdm { .. }) => "single active TASP, TDM",
        (_, Strategy::Reroute) => "single active TASP, reroute",
    };
    let samples = result
        .stats
        .snapshots
        .iter()
        .map(|s| UtilSample {
            t: s.cycle as i64 - warmup,
            input_util: s.input_util,
            output_util: s.output_util,
            injection_util: s.injection_util,
            all_cores_full: s.routers_all_cores_full,
            half_cores_full: s.routers_half_cores_full,
            blocked_port_routers: s.routers_blocked_port,
            delivered_delta: s.delivered_flits,
            retx_delta: s.retransmissions,
            uncorrectable_delta: s.uncorrectable_faults,
        })
        .collect();
    Fig11Data { label, samples }
}

/// Summary milestones the paper quotes: fraction of routers with a blocked
/// port within `by` cycles of attack start, and injection-port death by
/// the end of the horizon.
pub fn milestones(data: &Fig11Data, by: i64) -> (f64, f64) {
    let routers = 16.0;
    let blocked_early = data
        .samples
        .iter()
        .filter(|s| s.t >= 0 && s.t <= by)
        .map(|s| s.blocked_port_routers)
        .max()
        .unwrap_or(0) as f64
        / routers;
    let dead_late = data
        .samples
        .iter()
        .filter(|s| s.t >= 0)
        .map(|s| s.half_cores_full)
        .max()
        .unwrap_or(0) as f64
        / routers;
    (blocked_early, dead_late)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_builds_back_pressure_and_clean_run_does_not() {
        let attacked = compute(Strategy::Unprotected, 1, 1500);
        let clean = compute(Strategy::Unprotected, 0, 1500);
        // Injection queues explode under attack (the paper's Fig. 11(a)
        // utilisation blow-up) and stay modest in normal operation.
        let peak_inj = |d: &Fig11Data| {
            d.samples
                .iter()
                .filter(|s| s.t >= 0)
                .map(|s| s.injection_util)
                .max()
                .unwrap_or(0)
        };
        let (pa, pc) = (peak_inj(&attacked), peak_inj(&clean));
        assert!(pa > pc * 5, "attack must explode queues: {pa} vs {pc}");
        // Back-pressure reaches most of the chip: ≥ 11/16 routers see a
        // blocked port (the paper's 68 % milestone)…
        let blocked = attacked
            .samples
            .iter()
            .map(|s| s.blocked_port_routers)
            .max()
            .unwrap();
        assert!(blocked >= 11, "blocked routers {blocked}");
        // …and most routers end with >50 % of their cores' injection
        // queues dead (the paper's 81 % by 1500 cycles; exact timing is
        // injection-rate sensitive — see EXPERIMENTS.md).
        let dead = attacked
            .samples
            .iter()
            .map(|s| s.half_cores_full)
            .max()
            .unwrap();
        assert!(dead >= 10, "injection-dead routers {dead}");
        // The clean run never comes close on either series.
        let blocked_clean = clean
            .samples
            .iter()
            .map(|s| s.blocked_port_routers)
            .max()
            .unwrap();
        assert!(blocked_clean <= 7, "clean blocked {blocked_clean}");
        // Exact peaks are RNG-stream sensitive (the traffic model draws
        // from the seeded generator); what matters is the contrast with
        // the attacked run's ≥ 10.
        let dead_clean = clean
            .samples
            .iter()
            .map(|s| s.half_cores_full)
            .max()
            .unwrap();
        assert!(dead_clean <= 4, "clean dead {dead_clean}");
        assert!(dead_clean * 2 < dead, "no contrast: {dead_clean} vs {dead}");
    }

    #[test]
    fn interval_deltas_expose_the_attack_signature() {
        let attacked = compute(Strategy::Unprotected, 1, 800);
        let clean = compute(Strategy::Unprotected, 0, 800);
        // The clean run delivers steadily with no faults at all.
        assert!(clean.samples.iter().map(|s| s.delivered_delta).sum::<u64>() > 0);
        assert!(clean.samples.iter().all(|s| s.uncorrectable_delta == 0));
        assert!(clean.samples.iter().all(|s| s.retx_delta == 0));
        // The attack window shows the retransmission storm interval by
        // interval — the per-interval forensic series Fig. 11 needs.
        let post: Vec<&UtilSample> = attacked.samples.iter().filter(|s| s.t >= 0).collect();
        assert!(post.iter().any(|s| s.retx_delta > 0));
        assert!(post.iter().any(|s| s.uncorrectable_delta > 0));
    }

    #[test]
    fn e2e_obfuscation_fails_exactly_like_no_mitigation() {
        // Fig. 11(a)'s premise: the header-targeting trojan sees through
        // end-to-end data scrambling — the time series are identical.
        let unprotected = compute(Strategy::Unprotected, 1, 800);
        let e2e = compute(Strategy::E2eObfuscation, 1, 800);
        let series = |d: &Fig11Data| {
            d.samples
                .iter()
                .map(|s| (s.injection_util, s.blocked_port_routers))
                .collect::<Vec<_>>()
        };
        assert_eq!(series(&unprotected), series(&e2e));
    }

    #[test]
    fn milestones_are_computed_over_the_attack_window() {
        let attacked = compute(Strategy::Unprotected, 1, 1200);
        let (blocked_frac, dead_frac) = milestones(&attacked, 400);
        assert!(blocked_frac > 0.5, "blocked fraction {blocked_frac}");
        assert!(dead_frac > 0.5, "dead fraction {dead_frac}");
    }
}
