//! Extension experiment — the paper's §IV-B suggestion that the threat
//! detector's diagnosis can drive "more aggressive approaches … such as
//! rerouting packets or invoking the OS to migrate processes from one
//! network region to another which can be used to complement our
//! proposed design."
//!
//! Here the OS watches the event stream; when a link is classified as
//! trojan-infected it migrates the victim application's master to a
//! router far from the compromised region. A destination-targeting
//! trojan then never sees its target again — the attack is neutralised
//! even *without* continuing obfuscation, at the cost of a migration
//! stall and the cache/working-set refill the stall models.

use htnoc_core::prelude::*;
use noc_sim::TrafficSource;
use noc_types::PacketId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An application model whose primary can be migrated at runtime.
pub struct MigratableApp {
    spec: AppSpec,
    mesh: Mesh,
    rng: StdRng,
    next_packet: u64,
    until: u64,
    polled: u64,
    /// Migration in effect: all primary-bound traffic retargets here.
    new_primary: Option<NodeId>,
    /// Injection pauses during the migration stall window.
    stall_until: u64,
}

impl MigratableApp {
    /// A migratable instance of `spec` injecting until `until`.
    pub fn new(spec: AppSpec, mesh: Mesh, seed: u64, until: u64) -> Self {
        Self {
            spec,
            mesh,
            rng: StdRng::seed_from_u64(seed),
            next_packet: 0,
            until,
            polled: 0,
            new_primary: None,
            stall_until: 0,
        }
    }

    /// OS-invoked migration: move the master to `to`, stalling the
    /// application for `stall` cycles (checkpoint + restart).
    pub fn migrate(&mut self, now: u64, to: NodeId, stall: u64) {
        self.new_primary = Some(to);
        self.stall_until = now + stall;
    }

    /// Where the master migrated to, if it has.
    pub fn migrated(&self) -> Option<NodeId> {
        self.new_primary
    }

    /// Packets issued so far.
    pub fn packets_issued(&self) -> u64 {
        self.next_packet
    }

    fn effective_dest(&mut self, src: NodeId) -> NodeId {
        // Gravity sampling as in AppModel, but retargeting primary-bound
        // packets post-migration.
        let u: f64 = self.rng.gen();
        let primary = self.new_primary.unwrap_or(self.spec.primary);
        if u < self.spec.to_primary && src != primary {
            return primary;
        }
        // Remainder: decay around the source.
        loop {
            let d = NodeId(self.rng.gen_range(0..self.mesh.routers() as u16));
            if d == src {
                continue;
            }
            let w = (-self.spec.decay * self.mesh.hop_distance(src, d) as f64).exp();
            if self.rng.gen_bool(w.clamp(0.01, 1.0)) {
                return d;
            }
        }
    }
}

impl TrafficSource for MigratableApp {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        self.polled = self.polled.max(cycle);
        if cycle >= self.until || cycle < self.stall_until {
            return;
        }
        for core in 0..self.mesh.cores() {
            let src = self.mesh.router_of_core(noc_types::CoreId(core as u16));
            let mut rate = self.spec.rate;
            let primary = self.new_primary.unwrap_or(self.spec.primary);
            if src == primary {
                rate *= self.spec.primary_boost;
            }
            if !self.rng.gen_bool(rate.min(1.0)) {
                continue;
            }
            let dest = self.effective_dest(src);
            let id = PacketId(self.next_packet);
            self.next_packet += 1;
            out.push(Packet::new(
                id,
                src,
                dest,
                VcId((id.0 % 4) as u8),
                self.spec.mem_base | (self.rng.gen::<u32>() & 0x00FF_FFFF),
                (core % self.mesh.concentration() as usize) as u8,
                self.spec.packet_len,
                cycle,
            ));
        }
    }

    fn done(&self) -> bool {
        self.polled + 1 >= self.until
    }
}

/// Outcome of one migration-policy run.
#[derive(Debug, Clone, Copy)]
pub struct MigrationOutcome {
    /// Cycle (post-arm) the OS migrated the master, if it did.
    pub migrated_at: Option<u64>,
    /// Packets the application offered.
    pub injected: u64,
    /// Packets delivered.
    pub delivered: u64,
    /// Peak injection-queue backlog after the attack started.
    pub peak_backlog: usize,
    /// Whether the workload fully drained.
    pub drained: bool,
}

/// Run the attack with the OS-migration policy layered on the detector:
/// a single trojan on the funnel link targets the app's original primary;
/// when any link is classified `HardwareTrojan`, the OS migrates the
/// master to the far corner and the trojan goes blind.
pub fn run_with_migration(migrate: bool, horizon: u64) -> MigrationOutcome {
    let mesh = Mesh::paper();
    let app = AppSpec::blackscholes();
    // Hot funnel link, as in Fig. 11.
    let mut probe = AppModel::new(app.clone(), mesh.clone(), 7);
    let shares = TrafficMatrix::sample(&mut probe, 1500).link_shares_xy(&mesh);
    let infected: Vec<LinkId> = select_infected(&mesh, &shares, 1.0, None)
        .into_iter()
        .take(1)
        .collect();

    // Mitigation on: the detector must classify the link so the OS has a
    // signal. (L-Ob alone already defeats the trojan; the migration policy
    // additionally removes the target from the attack surface entirely.)
    let mut cfg = SimConfig::paper();
    cfg.snapshot_interval = 10;
    let mut sim = Simulator::new(cfg);
    for l in &infected {
        let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(
            (app.primary.0 & 0xF) as u8,
        )));
        let faults = std::mem::replace(
            sim.link_faults_mut(*l),
            noc_sim::fault::LinkFaults::healthy(0),
        );
        *sim.link_faults_mut(*l) = faults.with_trojan(ht);
    }

    let warmup = 800u64;
    let until = warmup + horizon;
    let mut appsrc = MigratableApp::new(app, mesh, 9, until);
    sim.run(warmup, &mut appsrc);
    sim.arm_trojans(true);

    let mut migrated_at = None;
    while sim.cycle() < until {
        sim.step(&mut appsrc);
        if migrate && migrated_at.is_none() {
            let classified = sim.events().iter().any(|e| {
                matches!(
                    e,
                    SimEvent::LinkClassified {
                        class: FaultClass::HardwareTrojan,
                        ..
                    }
                )
            });
            if classified {
                let now = sim.cycle();
                // Move the master to the far corner, 200-cycle stall.
                appsrc.migrate(now, NodeId(15), 200);
                migrated_at = Some(now - warmup);
            }
        }
    }
    // Drain.
    let drained = sim.run_to_quiescence(10_000, &mut appsrc);
    let peak_backlog = sim
        .stats()
        .snapshots
        .iter()
        .filter(|s| s.cycle >= warmup)
        .map(|s| s.injection_util)
        .max()
        .unwrap_or(0);
    MigrationOutcome {
        migrated_at,
        injected: appsrc.packets_issued(),
        delivered: sim.stats().delivered_packets,
        peak_backlog,
        drained,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_neutralises_the_trojan() {
        let with = run_with_migration(true, 1200);
        assert!(with.drained, "workload must finish");
        assert_eq!(with.delivered, with.injected);
        assert!(
            with.migrated_at.is_some(),
            "the detector must have produced a trojan classification"
        );
    }

    #[test]
    fn policy_only_fires_when_enabled() {
        let without = run_with_migration(false, 600);
        assert!(without.migrated_at.is_none());
    }
}
