//! The figure/table regeneration harness.
//!
//! Every table and figure of the paper's evaluation has a compute function
//! here returning structured data, a `src/bin/*.rs` binary that prints the
//! same rows/series the paper reports, and a criterion bench exercising the
//! underlying code path. EXPERIMENTS.md records paper-vs-measured for each.

pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod flood;
pub mod migration;
pub mod power_tables;
pub mod table;
