//! Tables I & II and Figs. 8 & 9 — the synthesis-cost results, from the
//! calibrated gate-level model in `noc-power`.

use htnoc_core::prelude::*;
use noc_power::Power;

/// Paper Table I reference values: (area µm², dynamic µW, leakage nW,
/// timing ns) per target variant — used by the binaries to print
/// paper-vs-model columns and by EXPERIMENTS.md.
pub fn table1_paper(kind: TargetKind) -> (f64, f64, f64, f64) {
    match kind {
        TargetKind::Full => (50.45, 25.5304, 30.2694, 0.21),
        TargetKind::Dest => (33.516, 9.9263, 16.2355, 0.21),
        TargetKind::Src => (33.516, 9.9263, 16.2355, 0.21),
        TargetKind::DestSrc => (37.044, 10.9416, 16.2498, 0.21),
        TargetKind::Mem => (44.4528, 10.1997, 17.0468, 0.21),
        TargetKind::Vc => (31.9284, 10.5953, 15.0765, 0.21),
    }
}

/// Model rows for Table I.
pub fn table1_model() -> Vec<(TargetKind, Power)> {
    TaspPower::new(noc_power::CellLibrary::tsmc40()).table1()
}

/// Table II: mitigation overhead (area fraction, power fraction).
pub fn table2_model() -> (MitigationPower, RouterPower, (f64, f64)) {
    let router = RouterPower::paper();
    let mit = MitigationPower::paper();
    let overhead = mit.overhead(&router);
    (mit, router, overhead)
}

/// Fig. 8 left pies: router component shares (name, dynamic, leakage),
/// with the single-TASP slice appended the way the paper draws it.
pub fn fig8_router_pies() -> Vec<(&'static str, f64, f64)> {
    let router = RouterPower::paper();
    let tasp = TaspPower::new(noc_power::CellLibrary::tsmc40()).variant(TargetKind::Full);
    let total = router.total();
    let dyn_total = total.dynamic_uw + tasp.dynamic_uw;
    let leak_total = total.leakage_nw + tasp.leakage_nw;
    let mut rows: Vec<(&'static str, f64, f64)> = router
        .shares()
        .into_iter()
        .map(|(name, d, l)| {
            (
                name,
                d * total.dynamic_uw / dyn_total,
                l * total.leakage_nw / leak_total,
            )
        })
        .collect();
    rows.push((
        "Single TASP HT",
        tasp.dynamic_uw / dyn_total,
        tasp.leakage_nw / leak_total,
    ));
    rows
}

/// Fig. 8 right pies: NoC area (tasp-on-all-links, wires, active) and NoC
/// dynamic power (routers, tasp-on-all-48-links).
pub fn fig8_noc_pies() -> ((f64, f64, f64), (f64, f64)) {
    let noc = NocPower::paper();
    (noc.area_shares(), noc.dynamic_shares())
}

/// Fig. 9: TASP area per target variant (µm²).
pub fn fig9_areas() -> Vec<(TargetKind, f64)> {
    table1_model()
        .into_iter()
        .map(|(k, p)| (k, p.area_um2))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_pie_slices_sum_to_one() {
        let rows = fig8_router_pies();
        let d: f64 = rows.iter().map(|r| r.1).sum();
        let l: f64 = rows.iter().map(|r| r.2).sum();
        assert!((d - 1.0).abs() < 1e-9);
        assert!((l - 1.0).abs() < 1e-9);
        // TASP slice ≲ 1 % as in the paper.
        let tasp = rows.last().unwrap();
        assert!(tasp.1 < 0.01 && tasp.2 < 0.01);
    }

    #[test]
    fn fig9_order_matches_comparator_widths_with_activity_fixups() {
        let areas = fig9_areas();
        let get = |k: TargetKind| areas.iter().find(|(a, _)| *a == k).unwrap().1;
        assert!(get(TargetKind::Full) > get(TargetKind::Mem));
        assert!(get(TargetKind::Mem) > get(TargetKind::DestSrc));
        assert!(get(TargetKind::Vc) < get(TargetKind::Dest));
    }

    #[test]
    fn table2_overheads() {
        let (_, _, (area, power)) = table2_model();
        assert!((area - 0.02).abs() < 0.005);
        assert!((power - 0.06).abs() < 0.01);
    }
}
