//! Fig. 1 — traffic distributions of an application benchmark on the
//! 64-core NoC: (a) src×dest packet matrix, (b) per-source geographic
//! totals, (c) per-link traffic shares.

use htnoc_core::prelude::*;

/// All three Fig. 1 views for one application model.
#[derive(Debug, Clone)]
pub struct Fig1Data {
    /// Application name.
    pub app: &'static str,
    /// Measured src x dest packet counts.
    pub matrix: TrafficMatrix,
    /// Per-source totals (Fig. 1(b)).
    pub source_totals: Vec<u64>,
    /// Per-link traffic shares under XY (Fig. 1(c)).
    pub link_shares: Vec<f64>,
}

/// Sample `cycles` of the model's offered load (Fig. 1 characterises the
/// trace, not the network response).
pub fn compute(app: AppSpec, cycles: u64, seed: u64) -> Fig1Data {
    let mesh = Mesh::paper();
    let name = app.name;
    let mut model = AppModel::new(app, mesh.clone(), seed);
    let matrix = TrafficMatrix::sample(&mut model, cycles);
    let source_totals = matrix.source_totals();
    let link_shares = matrix.link_shares_xy(&mesh);
    Fig1Data {
        app: name,
        matrix,
        source_totals,
        link_shares,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackscholes_distribution_shape() {
        let data = compute(AppSpec::blackscholes(), 2000, 11);
        // (b): the primary router is the hottest source (its cores answer
        // workers at a boosted rate).
        let primary = AppSpec::blackscholes().primary.index();
        let max_src = data
            .source_totals
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .unwrap()
            .0;
        assert_eq!(max_src, primary);
        // (c): shares form a distribution with visible peaks and valleys.
        let total: f64 = data.link_shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let max = data.link_shares.iter().cloned().fold(0.0, f64::max);
        let min = data.link_shares.iter().cloned().fold(1.0, f64::min);
        assert!(max > 4.0 * (min + 1e-12), "peaks and valleys expected");
    }
}
