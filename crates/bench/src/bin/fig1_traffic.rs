//! Regenerate **Fig. 1**: traffic distributions of the Blackscholes model
//! on the 64-core NoC — (a) src×dest matrix, (b) per-source totals,
//! (c) per-link traffic shares.
//!
//! Run: `cargo run --release -p noc-bench --bin fig1_traffic [app] [cycles]`

use htnoc_core::prelude::*;
use noc_bench::fig1;
use noc_bench::table::{pct, print_table};

fn app_by_name(name: &str) -> AppSpec {
    AppSpec::all()
        .into_iter()
        .find(|a| a.name == name)
        .unwrap_or_else(AppSpec::blackscholes)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let app = app_by_name(&args.next().unwrap_or_else(|| "blackscholes".into()));
    let cycles: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5000);
    let data = fig1::compute(app, cycles, 7);
    let mesh = Mesh::paper();

    println!(
        "=== Fig. 1 — {} traffic distributions ({} sampled cycles) ===\n",
        data.app, cycles
    );

    println!("(a) source × destination request packets:");
    let headers: Vec<String> = std::iter::once("src\\dst".to_string())
        .chain((0..16).map(|d| format!("{d}")))
        .collect();
    let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..16)
        .map(|s| {
            std::iter::once(format!("{s}"))
                .chain((0..16).map(|d| data.matrix.counts[s][d].to_string()))
                .collect()
        })
        .collect();
    print_table(&hrefs, &rows);

    println!("\n(b) per-source totals by mesh position (hot spots):");
    for y in (0..4).rev() {
        let row: Vec<String> = (0..4)
            .map(|x| {
                let n = mesh.node_at(noc_types::Coord::new(x, y));
                format!("{:6}", data.source_totals[n.index()])
            })
            .collect();
        println!("  y={y}  {}", row.join(" "));
    }

    println!("\n(c) per-link traffic share under XY routing (top 12):");
    let hot = data.matrix.hottest_links_xy(&mesh, 12);
    let rows: Vec<Vec<String>> = hot
        .iter()
        .map(|(l, share)| {
            let (src, dir) = mesh.link_source(*l);
            vec![
                format!("link {}", l.0),
                format!("{:?} {:?}", src, dir),
                pct(*share),
            ]
        })
        .collect();
    print_table(&["link", "from / dir", "share"], &rows);
}
