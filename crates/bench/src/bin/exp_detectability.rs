//! Extension experiment — §III-A's detectability analysis, quantified:
//! how hard is each TASP variant to catch with logic testing (trigger
//! probability) and side-channel analysis (idle-leakage SNR), and how the
//! kill switch + comparator width close the logic-testing avenue that
//! caught prior work's 1–3-gate link trojans.
//!
//! Run: `cargo run --release -p noc-bench --bin exp_detectability`

use noc_bench::table::{f, print_table};
use noc_power::{CellLibrary, RouterPower, SideChannelModel, TaspPower};
use noc_trojan::detection::{expected_triggers, trigger_probability, vectors_for_confidence};
use noc_trojan::TargetKind;

fn main() {
    println!("=== Extension — TASP post-fabrication detectability ===\n");
    let router_leak = RouterPower::paper().total().leakage_nw;
    let sc = SideChannelModel::default();
    let tight = SideChannelModel {
        leakage_sigma_frac: 0.01,
        measurements: 1_000_000,
        threshold_sigma: 3.0,
    };
    let mut rows = Vec::new();
    for kind in TargetKind::ALL {
        let p = trigger_probability(kind);
        let vectors = vectors_for_confidence(kind, 0.95)
            .map(|v| {
                if v > 1_000_000_000 {
                    format!("{:.1e}", v as f64)
                } else {
                    v.to_string()
                }
            })
            .unwrap_or_else(|| "> 2^60".into());
        let tasp = TaspPower::new(CellLibrary::tsmc40()).variant(kind);
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.2e}", p),
            vectors,
            format!("{:.0}", expected_triggers(kind, 1_000_000_000, false)),
            f(sc.snr(tasp.leakage_nw, router_leak), 2),
            f(tight.snr(tasp.leakage_nw, router_leak), 1),
        ]);
    }
    print_table(
        &[
            "target",
            "P(trigger/vector)",
            "vectors for 95%",
            "triggers @1e9 vec, killsw down",
            "SNR (5% σ, 100 avg)",
            "SNR (1% σ, 1e6 avg)",
        ],
        &rows,
    );
    println!(
        "\nThe kill switch zeroes logic-testing exposure outright; the wide\n\
         comparators would defeat it anyway (vs ~200 vectors for the 1–3-gate\n\
         trojans of prior work). Dormant, the trojan's only footprint is its\n\
         ~15–30 nW leakage — invisible at production-test measurement quality\n\
         (SNR ≪ 3), only approachable with laboratory-grade calibration."
    );
    println!("\nAttacker's stealth budget: max payload-counter width Y below 3σ:");
    let mut rows = Vec::new();
    for (label, m) in [("production test", sc), ("laboratory", tight)] {
        let y = m
            .max_stealthy_y(TargetKind::Dest)
            .map(|y| y.to_string())
            .unwrap_or_else(|| "0 (always visible)".into());
        rows.push(vec![label.to_string(), y]);
    }
    print_table(&["measurement quality", "max stealthy Y (Dest)"], &rows);
}
