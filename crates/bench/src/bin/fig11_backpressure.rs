//! Regenerate **Fig. 11**: utilisation and router-stall time series for
//! (a) a single active TASP with no working mitigation and (b) normal
//! operation, on the Blackscholes workload.
//!
//! Run: `cargo run --release -p noc-bench --bin fig11_backpressure`

use htnoc_core::prelude::*;
use noc_bench::fig11::{compute, milestones, Fig11Data};
use noc_bench::table::print_table;

fn print_series(data: &Fig11Data) {
    println!("--- {} ---", data.label);
    let rows: Vec<Vec<String>> = data
        .samples
        .iter()
        .filter(|s| s.t >= -100 && s.t % 100 == 0)
        .map(|s| {
            vec![
                s.t.to_string(),
                s.input_util.to_string(),
                s.output_util.to_string(),
                s.injection_util.to_string(),
                s.all_cores_full.to_string(),
                s.half_cores_full.to_string(),
                s.blocked_port_routers.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "t (post-arm)",
            "input util",
            "output util",
            "inj util",
            "all cores full",
            ">50% full",
            "≥1 port blocked",
        ],
        &rows,
    );
}

fn main() {
    println!("=== Fig. 11 — back-pressure under a single active TASP ===\n");
    let attacked = compute(Strategy::Unprotected, 1, 1500);
    print_series(&attacked);
    let (blocked_frac, dead_frac) = milestones(&attacked, 300);
    println!(
        "\nmilestones: {:.0}% of routers with a blocked port within 300 cycles \
         (paper: 68% within 50–100); {:.0}% of routers with >50% injection \
         ports dead by 1500 cycles (paper: 81%).\n",
        blocked_frac * 100.0,
        dead_frac * 100.0
    );
    let clean = compute(Strategy::Unprotected, 0, 1500);
    print_series(&clean);
    println!("\n(e2e obfuscation produces a series identical to the unprotected run —");
    println!(" the header-targeting trojan sees through it; see fig11 tests.)");
}
