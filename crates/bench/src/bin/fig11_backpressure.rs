//! Regenerate **Fig. 11**: utilisation and router-stall time series for
//! (a) a single active TASP with no working mitigation and (b) normal
//! operation, on the Blackscholes workload.
//!
//! Run: `cargo run --release -p noc-bench --bin fig11_backpressure`
//!
//! With `--trace out.json`, the attacked run is re-executed with the
//! structured tracer armed: the bounded ring is dumped as JSONL
//! (`<stem>.jsonl`) and as a Chrome `trace_event` file (`out.json`,
//! loadable in Perfetto), and the per-link metrics table prints with
//! the infected link's retransmission storm at the top.

use htnoc_core::prelude::*;
use htnoc_core::viz;
use noc_bench::fig11::{compute, milestones, scenario, Fig11Data};
use noc_bench::table::print_table;
use noc_sim::TraceConfig;
use std::io::Write;

fn print_series(data: &Fig11Data) {
    println!("--- {} ---", data.label);
    let rows: Vec<Vec<String>> = data
        .samples
        .iter()
        .filter(|s| s.t >= -100 && s.t % 100 == 0)
        .map(|s| {
            vec![
                s.t.to_string(),
                s.input_util.to_string(),
                s.output_util.to_string(),
                s.injection_util.to_string(),
                s.all_cores_full.to_string(),
                s.half_cores_full.to_string(),
                s.blocked_port_routers.to_string(),
                s.delivered_delta.to_string(),
                s.retx_delta.to_string(),
                s.uncorrectable_delta.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "t (post-arm)",
            "input util",
            "output util",
            "inj util",
            "all cores full",
            ">50% full",
            "≥1 port blocked",
            "Δdelivered",
            "Δretx",
            "Δuncorrectable",
        ],
        &rows,
    );
}

fn main() {
    println!("=== Fig. 11 — back-pressure under a single active TASP ===\n");
    let attacked = compute(Strategy::Unprotected, 1, 1500);
    print_series(&attacked);
    let (blocked_frac, dead_frac) = milestones(&attacked, 300);
    println!(
        "\nmilestones: {:.0}% of routers with a blocked port within 300 cycles \
         (paper: 68% within 50–100); {:.0}% of routers with >50% injection \
         ports dead by 1500 cycles (paper: 81%).\n",
        blocked_frac * 100.0,
        dead_frac * 100.0
    );
    let clean = compute(Strategy::Unprotected, 0, 1500);
    print_series(&clean);
    println!("\n(e2e obfuscation produces a series identical to the unprotected run —");
    println!(" the header-targeting trojan sees through it; see fig11 tests.)");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            let Some(path) = args.next() else {
                eprintln!("usage: fig11_backpressure [--trace out.json]");
                std::process::exit(2);
            };
            dump_trace(path.into());
        }
    }
}

fn dump_trace(path: std::path::PathBuf) {
    println!("\nre-running the attacked scenario with the tracer armed...");
    let sc = scenario(Strategy::Unprotected, 1, 1500).with_trace(TraceConfig::default());
    let result = htnoc_core::run_scenario(&sc);
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create trace output directory");
        }
    }
    let jsonl_path = path.with_extension("jsonl");
    let mut jsonl = std::fs::File::create(&jsonl_path).expect("create jsonl trace");
    for rec in &result.trace {
        writeln!(jsonl, "{}", rec.to_jsonl()).expect("write jsonl trace");
    }
    std::fs::write(&path, noc_sim::trace::chrome_trace(result.trace.iter()))
        .expect("write chrome trace");
    println!(
        "  {} events: {} / {}",
        result.trace.len(),
        jsonl_path.display(),
        path.display()
    );
    println!(
        "\nper-link metrics, hottest first (cycles={}):",
        result.cycles
    );
    print!(
        "{}",
        viz::link_metrics_table(&result.metrics, result.cycles, 12)
    );
}
