//! Regenerate **Fig. 9**: TASP area by target-comparator variant.
//!
//! Run: `cargo run --release -p noc-bench --bin fig9_target_area`

use noc_bench::power_tables::{fig9_areas, table1_paper};
use noc_bench::table::{f, print_table};

fn main() {
    println!("=== Fig. 9 — TASP target selection vs area overhead ===\n");
    let rows: Vec<Vec<String>> = fig9_areas()
        .into_iter()
        .map(|(kind, area)| {
            let (paper_area, _, _, _) = table1_paper(kind);
            vec![
                kind.name().to_string(),
                format!("{}", kind.comparator_bits()),
                f(area, 2),
                f(paper_area, 2),
                f((area / paper_area - 1.0) * 100.0, 1) + "%",
            ]
        })
        .collect();
    print_table(
        &["target", "cmp bits", "model µm²", "paper µm²", "delta"],
        &rows,
    );
}
