//! Extension experiment — OS process migration on trojan classification
//! (§IV-B's "invoking the OS to migrate processes from one network region
//! to another").
//!
//! Run: `cargo run --release -p noc-bench --bin ext_migration`

use noc_bench::migration::run_with_migration;
use noc_bench::table::print_table;

fn main() {
    println!("=== Extension — OS migration driven by the threat detector ===\n");
    let with = run_with_migration(true, 1500);
    let without = run_with_migration(false, 1500);
    print_table(
        &[
            "policy",
            "migrated at (post-arm)",
            "delivered/injected",
            "peak backlog (flits)",
            "drained",
        ],
        &[
            vec![
                "L-Ob only".into(),
                "-".into(),
                format!("{}/{}", without.delivered, without.injected),
                without.peak_backlog.to_string(),
                without.drained.to_string(),
            ],
            vec![
                "L-Ob + migration".into(),
                with.migrated_at
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".into()),
                format!("{}/{}", with.delivered, with.injected),
                with.peak_backlog.to_string(),
                with.drained.to_string(),
            ],
        ],
    );
    println!(
        "\nAfter migration the destination-targeting trojan never sees its\n\
         target again: the attack surface is removed entirely, on top of the\n\
         1–3 cycle L-Ob penalty that had already contained it."
    );
}
