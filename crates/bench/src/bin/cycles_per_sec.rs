//! End-to-end simulator throughput harness: cycles/sec on the paper's
//! baseline and trojan-flood scenarios for a fixed cycle budget, plus a
//! mesh-scaling sweep (16×16 and 32×32) across the sharded engine's
//! thread axis.
//!
//! Writes `BENCH_throughput.json` (cycles/sec, flit-hops/sec, peak RSS,
//! per-scenario skipped-cycle counts and idle share from the quiescence
//! fast-forward engine, snapshot serialize/restore latency and encoded
//! size per scenario, and a threads → speedup scaling curve) and, when
//! `--gate` is passed, exits non-zero if:
//!
//! * cycles/sec on the 4×4 scenarios falls more than 30% below the
//!   committed `crates/bench/baseline_throughput.json`;
//! * crash-safe checkpointing at `--checkpoint-every 10000` would cost
//!   ≥ 1% of simulation time on the 4×4 scenarios (one snapshot
//!   serialization per 10 000 simulated cycles);
//! * any scenario's peak RSS exceeds 1.5× its committed ceiling (the
//!   parallel engine's per-shard scratch must not balloon memory);
//! * (machine-aware — only when `available_parallelism ≥ threads`;
//!   skipped runs are annotated `"degraded_host": true` in the report)
//!   a multi-threaded run is >30% slower than its own sequential run,
//!   or the headline 16×16 trojan-flood run at 8 threads misses its 3×
//!   speedup target minus the same 30% tolerance;
//! * the drain-heavy scenario gains less than 3× from quiescence
//!   fast-forwarding (skip-on vs skip-off pair), or the saturated 4×4
//!   trojan flood regresses beyond the standard 30% tolerance with
//!   skipping enabled — both resolved against the host's A/A noise
//!   floor, skipping cleanly when the machine cannot tell;
//! * the telemetry plane costs ≥ 2% of throughput on the 16×16
//!   trojan flood (best-of-3 paired runs, telemetry off vs on).
//!
//! Every measured run has telemetry armed, so each scenario also
//! reports its per-phase wall-time share and per-group shard
//! load-imbalance (side-band observations; the <2% ceiling above keeps
//! them honest). `--no-skip` disables the fast-forward engine in every
//! scenario for an A/B delta against the default report.
//!
//! Usage: `cargo run --release -p noc-bench --bin cycles_per_sec -- \
//!     [--quick] [--gate] [--no-skip] [--threads 1,2,4,8] [--out PATH]`

use noc_sim::routing::xy_direction;
use noc_sim::telemetry::{GROUP_COUNT, GROUP_LABELS, PHASE_COUNT, PHASE_LABELS};
use noc_sim::{LinkFaults, SimConfig, SimSnapshot, Simulator, TelemetryConfig, TrafficSource};
use noc_traffic::{AppModel, AppSpec, Pattern, SyntheticTraffic};
use noc_trojan::{TargetSpec, TaspConfig, TaspHt};
use noc_types::{Direction, Mesh, NodeId};
use std::fmt::Write as _;
use std::time::Instant;

/// One scenario's measured numbers.
struct Measurement {
    name: String,
    threads: usize,
    cycles: u64,
    wall_s: f64,
    cycles_per_sec: f64,
    flit_hops: u64,
    flit_hops_per_sec: f64,
    peak_rss_kb: u64,
    /// Throughput relative to the same scenario at 1 thread (scaling
    /// sweep entries only).
    speedup_vs_t1: Option<f64>,
    /// Wall time to serialize one full simulator snapshot (best of 3), µs.
    snapshot_ser_us: f64,
    /// Wall time to decode + restore that snapshot (best of 3), µs.
    snapshot_deser_us: f64,
    /// Encoded snapshot size on disk, bytes.
    snapshot_bytes: usize,
    /// Checkpointing tax as a percentage of simulation time when a
    /// snapshot is serialized every 10 000 cycles: ser-time divided by
    /// the time this run needs to simulate 10 000 cycles.
    ckpt_overhead_pct_at_10k: f64,
    /// Cycles the quiescence engine fast-forwarded instead of stepping.
    skipped_cycles: u64,
    /// `skipped_cycles` as a share of the cycle budget, percent.
    idle_cycle_pct: f64,
    /// True when this run's thread count exceeds the host's
    /// `available_parallelism` — its speedup number reflects
    /// oversubscription, not the engine, and is excluded from the
    /// `--gate` scaling floors.
    degraded_host: bool,
    /// Per-phase share of the profiled engine time, percent (telemetry
    /// side band).
    phase_share_pct: [f64; PHASE_COUNT],
    /// Average max/mean shard-time ratio per barrier group, permille
    /// (1000 = perfectly balanced). `None` at a single shard: max/mean
    /// over one shard is identically 1000, so reporting it would make
    /// the degenerate value indistinguishable from a genuinely balanced
    /// multi-shard run. Serialized as JSON `null`.
    group_imbalance_permille: Option<[u64; GROUP_COUNT]>,
}

/// Reset the kernel's RSS high-water mark so each scenario reports its
/// own peak instead of inheriting a larger earlier scenario's (or the
/// snapshot-latency probe's scratch buffers). Best-effort: on kernels
/// where `/proc/self/clear_refs` is read-only the readings stay
/// cumulative, which can only over-report — the gate stays sound.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Peak resident set size (VmHWM) of this process, in kB.
fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Drive `sim` for exactly `budget` cycles, draining events as we go so
/// the event queue cannot grow without bound. When the simulator's
/// fast-forward engine is enabled, provably idle stretches are skipped
/// in one bounded hop; the horizon probe is the cheapest reject in
/// `skip_window`, so busy scenarios pay roughly one branch per cycle.
fn drive(sim: &mut Simulator, traffic: &mut dyn TrafficSource, budget: u64) -> f64 {
    let t0 = Instant::now();
    while sim.cycle() < budget {
        if sim.skip_idle_cycles(budget - sim.cycle(), traffic) == 0 {
            sim.step(traffic);
            sim.drain_events();
        }
    }
    t0.elapsed().as_secs_f64()
}

fn measure(
    name: String,
    threads: usize,
    mut sim: Simulator,
    mut traffic: Box<dyn TrafficSource>,
    budget: u64,
    skip: bool,
) -> Measurement {
    // Every scenario runs with the side-band telemetry plane armed so
    // the report carries the engine's own profile; the paired
    // overhead experiment (and its gate) bounds what this costs.
    sim.set_telemetry(TelemetryConfig::default());
    sim.set_fast_forward(skip);
    reset_peak_rss();
    let wall_s = drive(&mut sim, traffic.as_mut(), budget);
    let skipped_cycles = sim.skipped_cycles();
    let flit_hops: u64 = sim.metrics().link_flits().iter().sum();
    // Read RSS before the snapshot probe: its scratch buffers are
    // checkpointing cost, not simulation cost, and must not trip (or
    // inflate) the per-scenario memory ceilings.
    let peak_rss_kb = peak_rss_kb();
    let mut phase_share_pct = [0.0; PHASE_COUNT];
    let mut group_imbalance_permille = None;
    if let Some(tel) = sim.telemetry() {
        let totals = tel.phase_total_ns();
        let sum: u64 = totals.iter().sum();
        if sum > 0 {
            for (share, t) in phase_share_pct.iter_mut().zip(totals) {
                *share = *t as f64 / sum as f64 * 100.0;
            }
        }
        if threads > 1 {
            let mut imb = [0; GROUP_COUNT];
            for (i, load) in imb.iter_mut().zip(tel.group_loads()) {
                *i = load.imbalance_permille();
            }
            group_imbalance_permille = Some(imb);
        }
    }
    let (snapshot_ser_us, snapshot_deser_us, snapshot_bytes) = snapshot_cost(&mut sim);
    let cycles_per_sec = budget as f64 / wall_s;
    // A checkpoint every 10 000 cycles costs one serialize per
    // 10_000 / cycles_per_sec seconds of simulation.
    let ckpt_overhead_pct_at_10k = snapshot_ser_us * 1e-6 / (10_000.0 / cycles_per_sec) * 100.0;
    Measurement {
        name,
        threads,
        cycles: budget,
        wall_s,
        cycles_per_sec,
        flit_hops,
        flit_hops_per_sec: flit_hops as f64 / wall_s,
        peak_rss_kb,
        speedup_vs_t1: None,
        snapshot_ser_us,
        snapshot_deser_us,
        snapshot_bytes,
        ckpt_overhead_pct_at_10k,
        skipped_cycles,
        idle_cycle_pct: skipped_cycles as f64 / budget as f64 * 100.0,
        degraded_host: false,
        phase_share_pct,
        group_imbalance_permille,
    }
}

/// Snapshot latency and size at the end state of a measured run:
/// (serialize µs, decode+restore µs, encoded bytes), each the best of 3
/// so one scheduler hiccup cannot poison the number.
fn snapshot_cost(sim: &mut Simulator) -> (f64, f64, usize) {
    let mut ser_us = f64::INFINITY;
    let mut deser_us = f64::INFINITY;
    let mut bytes_len = 0;
    for _ in 0..3 {
        let t0 = Instant::now();
        let snap = sim.snapshot();
        let bytes = snap.to_bytes();
        ser_us = ser_us.min(t0.elapsed().as_secs_f64() * 1e6);
        bytes_len = bytes.len();
        drop(snap);
        let t0 = Instant::now();
        let back = SimSnapshot::from_bytes(&bytes).expect("self-encoded snapshot decodes");
        sim.restore(&back).expect("self-snapshot restores");
        deser_us = deser_us.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    (ser_us, deser_us, bytes_len)
}

/// The paper's baseline: clean blackscholes traffic, mitigation on,
/// no trojans — exercises the steady-state hot loop and the idle tail.
fn baseline(budget: u64, skip: bool) -> Measurement {
    let mut cfg = SimConfig::paper();
    cfg.snapshot_interval = 1_000;
    let sim = Simulator::new(cfg);
    let mesh = sim.mesh().clone();
    let traffic = AppModel::new(AppSpec::blackscholes(), mesh, 7).until(budget * 2 / 3);
    measure("baseline".into(), 1, sim, Box::new(traffic), budget, skip)
}

/// The drain-heavy workload the fast-forward engine exists for: a short
/// blackscholes burst window (1% of the budget) followed by a long
/// quiescent tail. The active-set bitmaps already make naive idle
/// stepping ~20x cheaper than busy stepping, so the tail must dominate
/// in *wall time*, not just cycle count, for the skip delta to show —
/// hence the 1:99 busy:idle shape. With skipping enabled the simulator
/// hops the entire tail in one bounded call (replaying only the
/// `snapshot_interval` stats recordings it crosses); with it disabled
/// every empty cycle still walks the per-shard bitmap checks. The
/// on/off pair feeds the `--gate` skip-speedup floor.
fn drain(budget: u64, skip: bool) -> Measurement {
    let mut cfg = SimConfig::paper();
    cfg.snapshot_interval = 256;
    let sim = Simulator::new(cfg);
    let mesh = sim.mesh().clone();
    let traffic = AppModel::new(AppSpec::blackscholes(), mesh, 11).until(budget / 100);
    let name = if skip { "drain" } else { "drain_noskip" };
    measure(name.into(), 1, sim, Box::new(traffic), budget, skip)
}

/// The trojan-flood storm: an unmitigated hotspot flood through an
/// infected link — every hop retransmits, so the SECDED codec and the
/// retransmission machinery dominate.
fn trojan_flood(budget: u64, skip: bool) -> Measurement {
    let (sim, traffic) = trojan_flood_parts(budget);
    measure("trojan_flood".into(), 1, sim, traffic, budget, skip)
}

/// Build (but do not run) the 4×4 trojan flood — shared by the scenario
/// table and the skip-ratio pairing experiment.
fn trojan_flood_parts(budget: u64) -> (Simulator, Box<dyn TrafficSource>) {
    let mut cfg = SimConfig::paper_unprotected();
    cfg.snapshot_interval = 1_000;
    let mut sim = Simulator::new(cfg);
    let victim = NodeId(9);
    let hot = {
        let dir = xy_direction(sim.mesh(), NodeId(5), victim);
        sim.mesh()
            .link_out(NodeId(5), dir)
            .expect("adjacent routers share a link")
    };
    let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest((victim.0 & 0xF) as u8)));
    let faults = std::mem::replace(sim.link_faults_mut(hot), LinkFaults::healthy(hot.0 as u64));
    *sim.link_faults_mut(hot) = faults.with_trojan(ht);
    sim.arm_trojans(true);
    let mesh = sim.mesh().clone();
    let traffic = SyntheticTraffic::new(mesh, Pattern::Hotspot(vec![victim]), 0.05, 0x0D15_EA5E)
        .until(budget * 3 / 5);
    (sim, Box::new(traffic))
}

/// Paired skip-on/skip-off runs of the saturated 4×4 flood, alternating
/// arm order, median of the per-pair on/off throughput ratios. A single
/// A/B run swings with host noise well past the 30% no-regression band
/// on a co-tenanted machine; pairing cancels the symmetric part exactly
/// as the telemetry-overhead experiment does.
fn flood_skip_ratio_pairs(budget: u64, pairs: usize) -> f64 {
    let mut ratios = Vec::new();
    for rep in 0..pairs {
        let order = if rep % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        let mut cps = [0.0f64; 2];
        for on in order {
            let (mut sim, mut traffic) = trojan_flood_parts(budget);
            sim.set_fast_forward(on);
            let wall = drive(&mut sim, traffic.as_mut(), budget);
            cps[on as usize] = budget as f64 / wall;
        }
        let ratio = cps[1] / cps[0];
        eprintln!(
            "  pair {rep}: off {:.0} vs on {:.0} -> ratio {ratio:.2}",
            cps[0], cps[1]
        );
        ratios.push(ratio);
    }
    median(ratios)
}

/// Research-scale baseline: uniform-random traffic on a `dim`×`dim`
/// mesh (concentration 1), sharded over `threads` workers.
fn scaling_baseline(dim: u8, threads: usize, budget: u64, skip: bool) -> Measurement {
    let mut cfg = SimConfig::paper();
    cfg.mesh = Mesh::new(dim, dim, 1);
    cfg.snapshot_interval = 1_000;
    cfg.threads = Some(threads);
    let sim = Simulator::new(cfg);
    let mesh = sim.mesh().clone();
    let traffic =
        SyntheticTraffic::new(mesh, Pattern::UniformRandom, 0.05, 0xBA5E).until(budget * 2 / 3);
    let name = format!("baseline_{dim}x{dim}_t{threads}");
    measure(name, threads, sim, Box::new(traffic), budget, skip)
}

/// Research-scale trojan flood: a TASP comparator on a central feeder
/// link under an unmitigated hotspot flood, `dim`×`dim`, sharded over
/// `threads` workers.
fn scaling_trojan_flood(dim: u8, threads: usize, budget: u64, skip: bool) -> Measurement {
    let (sim, traffic) = scaling_trojan_flood_parts(dim, threads, budget);
    let name = format!("trojan_flood_{dim}x{dim}_t{threads}");
    measure(name, threads, sim, traffic, budget, skip)
}

/// Build (but do not run) the research-scale trojan flood — shared by
/// the scaling sweep and the telemetry-overhead pair.
fn scaling_trojan_flood_parts(
    dim: u8,
    threads: usize,
    budget: u64,
) -> (Simulator, Box<dyn TrafficSource>) {
    let mut cfg = SimConfig::paper_unprotected();
    cfg.mesh = Mesh::new(dim, dim, 1);
    cfg.snapshot_interval = 1_000;
    cfg.threads = Some(threads);
    let mut sim = Simulator::new(cfg);
    // Victim at the mesh centre; infect its western feeder link so the
    // whole hotspot stream crosses the comparator.
    let d = dim as u16;
    let victim = NodeId((d / 2) * d + d / 2);
    let feeder = NodeId(victim.0 - 1);
    let hot = {
        let dir = xy_direction(sim.mesh(), feeder, victim);
        sim.mesh()
            .link_out(feeder, dir)
            .expect("adjacent routers share a link")
    };
    let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest((victim.0 & 0xF) as u8)));
    let faults = std::mem::replace(sim.link_faults_mut(hot), LinkFaults::healthy(hot.0 as u64));
    *sim.link_faults_mut(hot) = faults.with_trojan(ht);
    sim.arm_trojans(true);
    let mesh = sim.mesh().clone();
    let traffic = SyntheticTraffic::new(mesh, Pattern::Hotspot(vec![victim]), 0.02, 0x0D15_EA5E)
        .until(budget * 3 / 5);
    (sim, Box::new(traffic))
}

/// Research-scale torus baseline: uniform-random traffic on a
/// `dim`×`dim` torus — every route comes from the precomputed topology
/// tables (dateline VC classes included) and both ring dimensions can
/// wrap, so the average hop count drops and the wrap links carry real
/// load.
fn torus_baseline(dim: u8, threads: usize, budget: u64, skip: bool) -> Measurement {
    let mut cfg = SimConfig::paper();
    cfg.mesh = Mesh::new_torus(dim, dim, 1);
    cfg.snapshot_interval = 1_000;
    cfg.threads = Some(threads);
    let sim = Simulator::new(cfg);
    let mesh = sim.mesh().clone();
    let traffic =
        SyntheticTraffic::new(mesh, Pattern::UniformRandom, 0.05, 0xBA5E).until(budget * 2 / 3);
    let name = format!("torus_baseline_{dim}x{dim}_t{threads}");
    measure(name, threads, sim, Box::new(traffic), budget, skip)
}

/// Research-scale torus flood: the TASP comparator rides an East wrap
/// link — dest-0 hotspot traffic from the far half of row 0 reaches the
/// victim over the `dim-1 → 0` wrap hop, a link plain meshes do not
/// have.
fn torus_trojan_flood(dim: u8, threads: usize, budget: u64, skip: bool) -> Measurement {
    let mut cfg = SimConfig::paper_unprotected();
    cfg.mesh = Mesh::new_torus(dim, dim, 1);
    cfg.snapshot_interval = 1_000;
    cfg.threads = Some(threads);
    let mut sim = Simulator::new(cfg);
    let victim = NodeId(0);
    let hot = sim
        .mesh()
        .link_out(NodeId(dim as u16 - 1), Direction::East)
        .expect("the torus has an East wrap hop on every row");
    let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest((victim.0 & 0xF) as u8)));
    let faults = std::mem::replace(sim.link_faults_mut(hot), LinkFaults::healthy(hot.0 as u64));
    *sim.link_faults_mut(hot) = faults.with_trojan(ht);
    sim.arm_trojans(true);
    let mesh = sim.mesh().clone();
    let traffic = SyntheticTraffic::new(mesh, Pattern::Hotspot(vec![victim]), 0.02, 0x0D15_EA5E)
        .until(budget * 3 / 5);
    let name = format!("torus_trojan_flood_{dim}x{dim}_t{threads}");
    measure(name, threads, sim, Box::new(traffic), budget, skip)
}

/// Paired telemetry-overhead experiment on the 16×16 trojan flood:
/// back-to-back disarmed/armed runs, nine pairs with alternating arm
/// order (so warm-cache / frequency-ramp bias cannot systematically
/// favour either arm), gated on the **median** per-pair overhead.
/// Host noise is symmetric across a pair, so the median tracks the
/// true cost on a quiet machine and cancels toward zero on a loud one
/// — it cannot fake a regression that is not there. Returns (median
/// off cps, median on cps, median overhead percent).
fn telemetry_overhead(dim: u8, budget: u64, skip: bool) -> (f64, f64, f64) {
    let (offs, ons, pcts) = paired_runs(dim, budget, 9, true, skip);
    (median(offs), median(ons), median(pcts))
}

/// A/A calibration for the overhead gate: the same pairing protocol
/// with telemetry off in **both** arms, so any nonzero "overhead" is
/// pure host noise. Returns the median absolute per-pair delta percent
/// — the smallest real effect this machine can currently resolve.
fn telemetry_noise_floor(dim: u8, budget: u64, skip: bool) -> f64 {
    let (_, _, pcts) = paired_runs(dim, budget, 5, false, skip);
    median(pcts.into_iter().map(f64::abs).collect())
}

/// Run `pairs` back-to-back run pairs (arm order alternating, so
/// warm-cache / frequency-ramp bias cannot systematically favour
/// either arm) and return per-pair (first-arm cps, second-arm cps,
/// delta percent). With `arm_b_telemetry`, the second arm runs with
/// the telemetry plane armed; otherwise both arms are identical.
fn paired_runs(
    dim: u8,
    budget: u64,
    pairs: usize,
    arm_b_telemetry: bool,
    skip: bool,
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let (mut a, mut b, mut pcts) = (Vec::new(), Vec::new(), Vec::new());
    for rep in 0..pairs {
        let order = if rep % 2 == 0 {
            [false, true]
        } else {
            [true, false]
        };
        let mut cps = [0.0f64; 2];
        for second in order {
            let (mut sim, mut traffic) = scaling_trojan_flood_parts(dim, 1, budget);
            sim.set_fast_forward(skip);
            if second && arm_b_telemetry {
                sim.set_telemetry(TelemetryConfig::default());
            }
            let wall = drive(&mut sim, traffic.as_mut(), budget);
            cps[second as usize] = budget as f64 / wall;
        }
        let pct = (cps[0] - cps[1]) / cps[0] * 100.0;
        eprintln!(
            "  pair {rep}: {} {:.0} vs {} {:.0} -> {pct:.2}%",
            if arm_b_telemetry { "off" } else { "a" },
            cps[0],
            if arm_b_telemetry { "on" } else { "a" },
            cps[1]
        );
        a.push(cps[0]);
        b.push(cps[1]);
        pcts.push(pct);
    }
    (a, b, pcts)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|x, y| x.total_cmp(y));
    v[v.len() / 2]
}

fn json_scenario(out: &mut String, m: &Measurement, last: bool) {
    writeln!(out, "    \"{}\": {{", m.name).unwrap();
    writeln!(out, "      \"threads\": {},", m.threads).unwrap();
    writeln!(out, "      \"cycles\": {},", m.cycles).unwrap();
    writeln!(out, "      \"wall_s\": {:.6},", m.wall_s).unwrap();
    writeln!(out, "      \"cycles_per_sec\": {:.1},", m.cycles_per_sec).unwrap();
    writeln!(out, "      \"flit_hops\": {},", m.flit_hops).unwrap();
    writeln!(
        out,
        "      \"flit_hops_per_sec\": {:.1},",
        m.flit_hops_per_sec
    )
    .unwrap();
    if let Some(s) = m.speedup_vs_t1 {
        writeln!(out, "      \"speedup_vs_t1\": {s:.2},").unwrap();
    }
    writeln!(out, "      \"snapshot_ser_us\": {:.1},", m.snapshot_ser_us).unwrap();
    writeln!(
        out,
        "      \"snapshot_deser_us\": {:.1},",
        m.snapshot_deser_us
    )
    .unwrap();
    writeln!(out, "      \"snapshot_bytes\": {},", m.snapshot_bytes).unwrap();
    writeln!(
        out,
        "      \"ckpt_overhead_pct_at_10k\": {:.4},",
        m.ckpt_overhead_pct_at_10k
    )
    .unwrap();
    writeln!(out, "      \"skipped_cycles\": {},", m.skipped_cycles).unwrap();
    writeln!(out, "      \"idle_cycle_pct\": {:.2},", m.idle_cycle_pct).unwrap();
    if m.degraded_host {
        writeln!(out, "      \"degraded_host\": true,").unwrap();
    }
    let shares = PHASE_LABELS
        .iter()
        .zip(m.phase_share_pct)
        .map(|(l, s)| format!("\"{l}\": {s:.1}"))
        .collect::<Vec<_>>()
        .join(", ");
    writeln!(out, "      \"phase_share_pct\": {{{shares}}},").unwrap();
    match m.group_imbalance_permille {
        Some(per_group) => {
            let imb = GROUP_LABELS
                .iter()
                .zip(per_group)
                .map(|(l, v)| format!("\"{l}\": {v}"))
                .collect::<Vec<_>>()
                .join(", ");
            writeln!(out, "      \"group_imbalance_permille\": {{{imb}}},").unwrap();
        }
        // A single shard has nothing to be imbalanced against.
        None => writeln!(out, "      \"group_imbalance_permille\": null,").unwrap(),
    }
    writeln!(out, "      \"peak_rss_kb\": {}", m.peak_rss_kb).unwrap();
    writeln!(out, "    }}{}", if last { "" } else { "," }).unwrap();
}

/// Extract `"key": <number>` from a flat JSON document. Good enough for
/// the committed baseline file, whose shape this repo controls.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let skip = !args.iter().any(|a| a == "--no-skip");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    let threads_axis: Vec<usize> = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|s| {
            s.split(',')
                .map(|t| t.trim().parse().expect("--threads takes e.g. 1,2,4,8"))
                .collect()
        })
        .unwrap_or_else(|| vec![1, 2, 4, 8]);
    assert!(
        threads_axis.contains(&1),
        "--threads must include 1 (the sequential reference for speedups)"
    );
    let avail = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let (base_budget, flood_budget) = if quick {
        (3_000, 1_500)
    } else {
        (20_000, 6_000)
    };
    // Per-dim cycle budgets for the scaling sweep; large meshes pay per
    // cycle, so the budget shrinks as the mesh grows.
    let scaling_budget = |dim: u8| -> u64 {
        match (dim, quick) {
            (16, true) => 800,
            (16, false) => 4_000,
            (32, true) => 300,
            (32, false) => 1_200,
            _ => unreachable!("scaling dims are 16 and 32"),
        }
    };

    eprintln!("cycles_per_sec: baseline ({base_budget} cycles)...");
    let base = baseline(base_budget, skip);
    eprintln!(
        "  {:>12.0} cycles/s  {:>12.0} flit-hops/s  {} kB peak RSS  {:.0}% idle-skipped",
        base.cycles_per_sec, base.flit_hops_per_sec, base.peak_rss_kb, base.idle_cycle_pct
    );
    eprintln!("cycles_per_sec: trojan_flood ({flood_budget} cycles)...");
    let flood = trojan_flood(flood_budget, skip);
    eprintln!(
        "  {:>12.0} cycles/s  {:>12.0} flit-hops/s  {} kB peak RSS  {:.0}% idle-skipped",
        flood.cycles_per_sec, flood.flit_hops_per_sec, flood.peak_rss_kb, flood.idle_cycle_pct
    );

    // The drain-heavy scenario runs as an explicit skip-on / skip-off
    // pair (regardless of --no-skip) so the report always carries the
    // fast-forward A/B delta, and the flood gets a skip-off arm for the
    // no-regression check. Skip-off arms run second so their RSS rides
    // on already-warm allocator state, same as every other scenario.
    // 20x the 4x4 budget: the busy window is budget/100, so the idle
    // tail outweighs the busy window in wall time even though an idle
    // cycle costs ~1/20th of a busy one.
    let drain_budget = base_budget * 20;
    eprintln!("cycles_per_sec: drain ({drain_budget} cycles, fast-forward on)...");
    let drain_on = drain(drain_budget, true);
    eprintln!(
        "  {:>12.0} cycles/s  {} kB peak RSS  {:.0}% idle-skipped",
        drain_on.cycles_per_sec, drain_on.peak_rss_kb, drain_on.idle_cycle_pct
    );
    eprintln!("cycles_per_sec: drain_noskip ({drain_budget} cycles, fast-forward off)...");
    let drain_off = drain(drain_budget, false);
    eprintln!(
        "  {:>12.0} cycles/s  {} kB peak RSS",
        drain_off.cycles_per_sec, drain_off.peak_rss_kb
    );
    let skip_speedup = drain_on.cycles_per_sec / drain_off.cycles_per_sec;
    eprintln!("  fast-forward speedup on drain: {skip_speedup:.2}x");
    eprintln!("cycles_per_sec: trojan_flood_noskip ({flood_budget} cycles)...");
    let mut flood_off = trojan_flood(flood_budget, false);
    flood_off.name = "trojan_flood_noskip".into();
    eprintln!("  {:>12.0} cycles/s", flood_off.cycles_per_sec);
    eprintln!("cycles_per_sec: flood skip-ratio pairs ({flood_budget} cycles x5)...");
    let flood_skip_ratio = flood_skip_ratio_pairs(flood_budget, 5);
    eprintln!(
        "  saturated flood on/off throughput ratio: {flood_skip_ratio:.2} (median of 5 pairs)"
    );

    // The wavefront-allocator headline scenario: a saturated 8×8 flood
    // with fast-forward disabled, so every wall-clock second is spent in
    // the allocation datapath (VA/SA/RC) rather than skip bookkeeping.
    // Sequential on purpose — the bitset datapath's gain must show
    // without sharding hiding it. 4x the 4x4 flood budget: this number
    // feeds a 1.8x gate floor, so the run must outlast timer and warmup
    // noise (at the 4x4 budget the whole run is under 50 ms).
    let flood8_budget = flood_budget * 4;
    eprintln!("cycles_per_sec: trojan_flood_8x8_noskip ({flood8_budget} cycles)...");
    let flood8 = {
        let (sim, traffic) = scaling_trojan_flood_parts(8, 1, flood8_budget);
        measure(
            "trojan_flood_8x8_noskip".into(),
            1,
            sim,
            traffic,
            flood8_budget,
            false,
        )
    };
    eprintln!("  {:>12.0} cycles/s", flood8.cycles_per_sec);

    // Mesh-scaling sweep: each scenario at every thread count on the
    // axis, sequential (t1) first as the speedup reference.
    let mut scaling: Vec<Measurement> = Vec::new();
    for dim in [16u8, 32] {
        let budget = scaling_budget(dim);
        for kind in ["baseline", "trojan_flood"] {
            let mut t1_cps = None;
            for &t in &threads_axis {
                eprintln!("cycles_per_sec: {kind}_{dim}x{dim}_t{t} ({budget} cycles)...");
                let mut m = match kind {
                    "baseline" => scaling_baseline(dim, t, budget, skip),
                    _ => scaling_trojan_flood(dim, t, budget, skip),
                };
                m.degraded_host = avail < t;
                if t == 1 {
                    t1_cps = Some(m.cycles_per_sec);
                } else if let Some(t1) = t1_cps {
                    m.speedup_vs_t1 = Some(m.cycles_per_sec / t1);
                }
                eprintln!(
                    "  {:>12.0} cycles/s  {:>12.0} flit-hops/s  {} kB peak RSS{}",
                    m.cycles_per_sec,
                    m.flit_hops_per_sec,
                    m.peak_rss_kb,
                    m.speedup_vs_t1
                        .map(|s| format!("  {s:.2}x vs t1"))
                        .unwrap_or_default()
                );
                scaling.push(m);
            }
        }
    }

    // Topology sweep: the same research-scale pair on a 16×16 torus at
    // threads {1, 8} ∩ axis. Reported in their own section and excluded
    // from every gate — wrap links reshape the traffic, so the mesh
    // floors do not transfer; torus floors come once the numbers settle.
    let torus_threads: Vec<usize> = threads_axis
        .iter()
        .copied()
        .filter(|t| *t == 1 || *t == 8)
        .collect();
    let mut torus: Vec<Measurement> = Vec::new();
    {
        let dim = 16u8;
        let budget = scaling_budget(dim);
        for kind in ["baseline", "trojan_flood"] {
            let mut t1_cps = None;
            for &t in &torus_threads {
                eprintln!("cycles_per_sec: torus_{kind}_{dim}x{dim}_t{t} ({budget} cycles)...");
                let mut m = match kind {
                    "baseline" => torus_baseline(dim, t, budget, skip),
                    _ => torus_trojan_flood(dim, t, budget, skip),
                };
                m.degraded_host = avail < t;
                if t == 1 {
                    t1_cps = Some(m.cycles_per_sec);
                } else if let Some(t1) = t1_cps {
                    m.speedup_vs_t1 = Some(m.cycles_per_sec / t1);
                }
                eprintln!(
                    "  {:>12.0} cycles/s  {:>12.0} flit-hops/s  {} kB peak RSS{}",
                    m.cycles_per_sec,
                    m.flit_hops_per_sec,
                    m.peak_rss_kb,
                    m.speedup_vs_t1
                        .map(|s| format!("  {s:.2}x vs t1"))
                        .unwrap_or_default()
                );
                torus.push(m);
            }
        }
    }

    // Telemetry-overhead pair on the headline research-scale scenario.
    // Longer than the scaling budget: each arm must outlast transient
    // host noise for the pairwise estimate to mean anything.
    let over_budget: u64 = if quick { 2_000 } else { 4_000 };
    eprintln!("cycles_per_sec: telemetry overhead pairs (16x16 flood, {over_budget} cycles x9)...");
    let (tel_off_cps, tel_on_cps, tel_overhead_pct) = telemetry_overhead(16, over_budget, skip);
    eprintln!(
        "  off {tel_off_cps:>10.0} cycles/s   on {tel_on_cps:>10.0} cycles/s   \
         overhead {tel_overhead_pct:.2}% (median of 9 pairs)"
    );
    eprintln!("cycles_per_sec: overhead noise floor (off-vs-off A/A pairs)...");
    let tel_noise_pct = telemetry_noise_floor(16, over_budget, skip);
    eprintln!("  this host resolves ~{tel_noise_pct:.2}% effects");

    let baseline_doc = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/baseline_throughput.json"
    ))
    .ok();
    let before = baseline_doc.as_deref().map(|doc| {
        (
            json_number(doc, "before_baseline_cps"),
            json_number(doc, "before_trojan_flood_cps"),
        )
    });

    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    )
    .unwrap();
    let axis = threads_axis
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    writeln!(out, "  \"threads_axis\": [{axis}],").unwrap();
    writeln!(out, "  \"available_parallelism\": {avail},").unwrap();
    writeln!(out, "  \"fast_forward\": {skip},").unwrap();
    writeln!(out, "  \"scenarios\": {{").unwrap();
    json_scenario(&mut out, &base, false);
    json_scenario(&mut out, &flood, false);
    json_scenario(&mut out, &flood_off, false);
    json_scenario(&mut out, &flood8, false);
    json_scenario(&mut out, &drain_on, false);
    let n = scaling.len();
    json_scenario(&mut out, &drain_off, n == 0);
    for (i, m) in scaling.iter().enumerate() {
        json_scenario(&mut out, m, i + 1 == n);
    }
    writeln!(out, "  }},").unwrap();
    // The torus sweep lives in its own section so its entries can be
    // added (or re-measured) without touching the committed mesh lines,
    // and so no gate accidentally picks them up.
    writeln!(out, "  \"torus_scenarios\": {{").unwrap();
    let n = torus.len();
    for (i, m) in torus.iter().enumerate() {
        json_scenario(&mut out, m, i + 1 == n);
    }
    writeln!(out, "  }},").unwrap();
    writeln!(out, "  \"fast_forward_delta\": {{").unwrap();
    writeln!(
        out,
        "    \"drain_skip_cps\": {:.1},",
        drain_on.cycles_per_sec
    )
    .unwrap();
    writeln!(
        out,
        "    \"drain_noskip_cps\": {:.1},",
        drain_off.cycles_per_sec
    )
    .unwrap();
    writeln!(
        out,
        "    \"drain_idle_cycle_pct\": {:.2},",
        drain_on.idle_cycle_pct
    )
    .unwrap();
    writeln!(out, "    \"drain_skip_speedup\": {skip_speedup:.2},").unwrap();
    writeln!(
        out,
        "    \"trojan_flood_skip_ratio\": {flood_skip_ratio:.2}"
    )
    .unwrap();
    writeln!(out, "  }},").unwrap();
    if let Some((Some(b), Some(f))) = before {
        writeln!(out, "  \"before\": {{").unwrap();
        writeln!(out, "    \"baseline_cps\": {b:.1},").unwrap();
        writeln!(out, "    \"trojan_flood_cps\": {f:.1}").unwrap();
        writeln!(out, "  }},").unwrap();
        writeln!(out, "  \"speedup\": {{").unwrap();
        writeln!(out, "    \"baseline\": {:.2},", base.cycles_per_sec / b).unwrap();
        writeln!(out, "    \"trojan_flood\": {:.2}", flood.cycles_per_sec / f).unwrap();
        writeln!(out, "  }},").unwrap();
    }
    writeln!(out, "  \"telemetry_overhead\": {{").unwrap();
    writeln!(out, "    \"scenario\": \"trojan_flood_16x16_t1\",").unwrap();
    writeln!(out, "    \"off_cps\": {tel_off_cps:.1},").unwrap();
    writeln!(out, "    \"on_cps\": {tel_on_cps:.1},").unwrap();
    writeln!(out, "    \"overhead_pct\": {tel_overhead_pct:.3},").unwrap();
    writeln!(out, "    \"aa_noise_floor_pct\": {tel_noise_pct:.3}").unwrap();
    writeln!(out, "  }},").unwrap();
    writeln!(out, "  \"peak_rss_kb\": {}", peak_rss_kb()).unwrap();
    writeln!(out, "}}").unwrap();
    std::fs::write(&out_path, &out).expect("write throughput report");
    eprintln!("cycles_per_sec: wrote {out_path}");

    if gate {
        let doc = baseline_doc.expect("--gate needs crates/bench/baseline_throughput.json");
        let mut failed = false;

        // Throughput floors: committed baseline minus 30% tolerance.
        for (m, key) in [
            (&base, "gate_baseline_cps"),
            (&flood, "gate_trojan_flood_cps"),
        ] {
            let floor = json_number(&doc, key).expect("gate value in baseline JSON");
            let min = floor * 0.7;
            if m.cycles_per_sec < min {
                eprintln!(
                    "GATE FAIL: {} at {:.0} cycles/s is more than 30% below the \
                     committed baseline of {:.0}",
                    m.name, m.cycles_per_sec, floor
                );
                failed = true;
            } else {
                eprintln!(
                    "gate ok: {} at {:.0} cycles/s (floor {:.0})",
                    m.name, m.cycles_per_sec, min
                );
            }
        }

        // Peak-RSS ceilings: each scenario must stay within 1.5x its
        // committed high-water mark so the sharded engine's duplicated
        // scratch buffers can't silently balloon memory. The high-water
        // mark is reset per scenario, but the allocator retains earlier
        // heap, so the committed values still assume the fixed scenario
        // order above.
        let mut all: Vec<&Measurement> =
            vec![&base, &flood, &flood_off, &flood8, &drain_on, &drain_off];
        all.extend(scaling.iter());
        for m in &all {
            let key = format!("gate_rss_{}_kb", m.name);
            let Some(ceiling) = json_number(&doc, &key) else {
                eprintln!("gate note: no RSS ceiling committed for {}", m.name);
                continue;
            };
            let max = ceiling * 1.5;
            if m.peak_rss_kb as f64 > max {
                eprintln!(
                    "GATE FAIL: {} peaked at {} kB RSS, above the committed \
                     ceiling {:.0} kB (+50% headroom = {:.0} kB)",
                    m.name, m.peak_rss_kb, ceiling, max
                );
                failed = true;
            } else {
                eprintln!(
                    "gate ok: {} peak RSS {} kB (ceiling {:.0} kB)",
                    m.name, m.peak_rss_kb, max
                );
            }
        }

        // Checkpointing ceiling: periodic crash-safe snapshots every
        // 10 000 cycles must stay a rounding error on the 4x4
        // scenarios, or checkpointed campaigns stop being free. The
        // metric is relative to simulation time, so every simulator
        // speedup shrinks its denominator and inflates the percentage
        // without any snapshot regression; the flood's ceiling was
        // re-recorded at 2% after the wavefront datapath made the
        // saturated cycle loop ~2.3x faster (its serializer still runs
        // in the same ~850 µs it always did, over a 4x larger encoded
        // state than the baseline's).
        for (m, ceiling) in [(&base, 1.0), (&flood, 2.0)] {
            let pct = m.ckpt_overhead_pct_at_10k;
            if pct >= ceiling {
                eprintln!(
                    "GATE FAIL: {} checkpoint overhead {pct:.3}% of sim time at \
                     --checkpoint-every 10000 (ceiling {ceiling}%; snapshot ser {:.0} µs)",
                    m.name, m.snapshot_ser_us
                );
                failed = true;
            } else {
                eprintln!(
                    "gate ok: {} checkpoint overhead {pct:.3}% at every-10k \
                     (ceiling {ceiling}%, ser {:.0} µs, {} bytes)",
                    m.name, m.snapshot_ser_us, m.snapshot_bytes
                );
            }
        }

        // Wavefront-datapath floor: the sequential 8×8 flood with
        // fast-forward disabled must hold the bitset allocator's gain —
        // at least 1.8× the committed pre-wavefront throughput for this
        // container class. A 1.8× floor is an 80%-scale effect, but the
        // margin that actually needs resolving is the headroom between
        // the recorded post-wavefront gain (~2.3×) and the floor, so
        // the check abstains when the host's A/A noise floor exceeds
        // that ~25% headroom.
        if let Some(before8) = json_number(&doc, "before_trojan_flood_8x8_noskip_cps") {
            let floor = before8 * 1.8;
            if tel_noise_pct > 25.0 {
                eprintln!(
                    "gate skip: trojan_flood_8x8_noskip at {:.0} cycles/s (floor \
                     {floor:.0}) but the host's A/A noise floor is {tel_noise_pct:.2}% \
                     (cannot resolve the wavefront headroom)",
                    flood8.cycles_per_sec
                );
            } else if flood8.cycles_per_sec < floor {
                eprintln!(
                    "GATE FAIL: trojan_flood_8x8_noskip at {:.0} cycles/s is below \
                     1.8x the pre-wavefront baseline of {before8:.0} (floor {floor:.0})",
                    flood8.cycles_per_sec
                );
                failed = true;
            } else {
                eprintln!(
                    "gate ok: trojan_flood_8x8_noskip at {:.0} cycles/s ({:.2}x the \
                     pre-wavefront {before8:.0}, floor 1.8x)",
                    flood8.cycles_per_sec,
                    flood8.cycles_per_sec / before8
                );
            }
        } else {
            eprintln!(
                "gate note: no before_trojan_flood_8x8_noskip_cps committed; \
                 wavefront floor unchecked"
            );
        }

        // Scaling floors, machine-aware: parallel throughput claims are
        // only meaningful when the hardware can actually run that many
        // workers, so each check is skipped when available_parallelism
        // is below the run's thread count.
        for m in &scaling {
            let Some(speedup) = m.speedup_vs_t1 else {
                continue;
            };
            if m.degraded_host {
                eprintln!(
                    "gate skip: {} needs {} hardware threads, machine has {avail} \
                     (annotated degraded_host in the report, excluded from floors)",
                    m.name, m.threads
                );
                continue;
            }
            // Headline target: 16x16 trojan flood at 8 threads must hit
            // 3x sequential; everything else must at least not regress
            // below sequential minus the standard 30% tolerance.
            let floor = if m.name == "trojan_flood_16x16_t8" {
                3.0 * 0.7
            } else {
                0.7
            };
            if speedup < floor {
                eprintln!(
                    "GATE FAIL: {} speedup {speedup:.2}x vs sequential is below \
                     the floor {floor:.2}x",
                    m.name
                );
                failed = true;
            } else {
                eprintln!(
                    "gate ok: {} speedup {speedup:.2}x (floor {floor:.2}x)",
                    m.name
                );
            }
        }

        // Shard-balance ceiling: no barrier group may run its slowest
        // shard at more than 5x the mean — beyond that the partition is
        // effectively sequential and the speedup floors above only pass
        // by luck. Skipped at a single shard (the metric is reported as
        // null there: max/mean over one shard is identically 1000) and
        // on degraded hosts (oversubscription skews per-shard time).
        for m in &scaling {
            match m.group_imbalance_permille {
                None => {
                    eprintln!(
                        "gate skip: {} shard balance (single shard; metric is null)",
                        m.name
                    );
                }
                Some(_) if m.degraded_host => {
                    eprintln!(
                        "gate skip: {} shard balance (degraded host: {} threads on \
                         {avail} hardware threads)",
                        m.name, m.threads
                    );
                }
                Some(per_group) => {
                    let worst = per_group.iter().copied().max().unwrap_or(1000);
                    if worst > 5000 {
                        eprintln!(
                            "GATE FAIL: {} worst group imbalance {worst} permille \
                             (ceiling 5000; one shard is dragging the barrier)",
                            m.name
                        );
                        failed = true;
                    } else {
                        eprintln!(
                            "gate ok: {} worst group imbalance {worst} permille \
                             (ceiling 5000)",
                            m.name
                        );
                    }
                }
            }
        }

        // Fast-forward floors. The drain-heavy scenario must gain at
        // least 3x from quiescence skipping — that is the whole point
        // of the engine — and the saturated 4x4 flood (no idle windows
        // to skip, so the horizon probe is pure overhead) must not
        // regress beyond the standard 30% tolerance. Machine-aware
        // like the telemetry ceiling: a 3x floor is a 200% effect, so
        // the check only abstains when the host's A/A noise floor
        // swamps even that; the 30% no-regression band abstains when
        // noise exceeds the band itself.
        if tel_noise_pct > 50.0 {
            eprintln!(
                "gate skip: drain fast-forward speedup measured {skip_speedup:.2}x but \
                 the host's A/A noise floor is {tel_noise_pct:.2}% (cannot resolve \
                 the 3x floor)"
            );
        } else if skip_speedup < 3.0 {
            eprintln!(
                "GATE FAIL: fast-forward speeds up the drain scenario only \
                 {skip_speedup:.2}x (floor 3x; skip {:.0} vs no-skip {:.0} cycles/s, \
                 {:.0}% of cycles skipped)",
                drain_on.cycles_per_sec, drain_off.cycles_per_sec, drain_on.idle_cycle_pct
            );
            failed = true;
        } else {
            eprintln!(
                "gate ok: fast-forward drain speedup {skip_speedup:.2}x (floor 3x, \
                 {:.0}% of cycles skipped)",
                drain_on.idle_cycle_pct
            );
        }
        if tel_noise_pct > 30.0 {
            eprintln!(
                "gate skip: flood skip ratio measured {flood_skip_ratio:.2} but the \
                 host's A/A noise floor is {tel_noise_pct:.2}% (cannot resolve the \
                 10% no-regression band)"
            );
        } else if flood_skip_ratio < 0.9 {
            // Re-recorded floor: since the skip gate's busy-network
            // early-out landed (the active sets are probed before the
            // injection-horizon walk), the paired-median ratio sits at
            // ~1.0, so a saturated flood losing more than 10% to the
            // horizon probe is a regression, not noise.
            eprintln!(
                "GATE FAIL: fast-forward regresses the saturated trojan flood to \
                 {flood_skip_ratio:.2}x of its skip-off throughput (floor 0.9; the \
                 horizon probe must reject via the active sets before walking \
                 the injection schedule)"
            );
            failed = true;
        } else {
            eprintln!(
                "gate ok: saturated flood at {flood_skip_ratio:.2}x of its skip-off \
                 throughput with fast-forward enabled (floor 0.9)"
            );
        }

        // Telemetry ceiling: the observability plane must stay a side
        // band — under 2% of throughput on the research-scale flood.
        // Machine-aware, like the speedup floors: when the off-vs-off
        // A/A calibration shows the host cannot resolve a 1% effect
        // (co-tenant noise), a pass or fail here would be a coin flip,
        // so the check reports a skip instead of a verdict.
        if tel_noise_pct > 1.0 {
            eprintln!(
                "gate skip: telemetry overhead measured {tel_overhead_pct:.2}% but the \
                 host's A/A noise floor is {tel_noise_pct:.2}% (needs < 1% to resolve \
                 the 2% ceiling)"
            );
        } else if tel_overhead_pct >= 2.0 {
            eprintln!(
                "GATE FAIL: telemetry costs {tel_overhead_pct:.2}% of 16x16 flood \
                 throughput (ceiling 2%; off {tel_off_cps:.0}, on {tel_on_cps:.0} \
                 cycles/s; A/A noise floor {tel_noise_pct:.2}%)"
            );
            failed = true;
        } else {
            eprintln!(
                "gate ok: telemetry overhead {tel_overhead_pct:.2}% on the 16x16 \
                 flood (ceiling 2%, A/A noise floor {tel_noise_pct:.2}%)"
            );
        }

        if failed {
            std::process::exit(1);
        }
    }
}
