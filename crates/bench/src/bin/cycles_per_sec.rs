//! End-to-end simulator throughput harness: cycles/sec on the paper's
//! baseline and trojan-flood scenarios for a fixed cycle budget.
//!
//! Writes `BENCH_throughput.json` (cycles/sec, flit-hops/sec, peak RSS)
//! and, when `--gate` is passed, exits non-zero if cycles/sec falls more
//! than 30% below the committed `crates/bench/baseline_throughput.json`.
//!
//! Usage: `cargo run --release -p noc-bench --bin cycles_per_sec -- \
//!     [--quick] [--gate] [--out PATH]`

use noc_sim::routing::xy_direction;
use noc_sim::{LinkFaults, SimConfig, Simulator, TrafficSource};
use noc_traffic::{AppModel, AppSpec, Pattern, SyntheticTraffic};
use noc_trojan::{TargetSpec, TaspConfig, TaspHt};
use noc_types::NodeId;
use std::fmt::Write as _;
use std::time::Instant;

/// One scenario's measured numbers.
struct Measurement {
    name: &'static str,
    cycles: u64,
    wall_s: f64,
    cycles_per_sec: f64,
    flit_hops: u64,
    flit_hops_per_sec: f64,
    peak_rss_kb: u64,
}

/// Peak resident set size (VmHWM) of this process, in kB.
fn peak_rss_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Drive `sim` for exactly `budget` cycles, draining events as we go so
/// the event queue cannot grow without bound.
fn drive(sim: &mut Simulator, traffic: &mut dyn TrafficSource, budget: u64) -> f64 {
    let t0 = Instant::now();
    while sim.cycle() < budget {
        sim.step(traffic);
        sim.drain_events();
    }
    t0.elapsed().as_secs_f64()
}

fn measure(
    name: &'static str,
    mut sim: Simulator,
    mut traffic: Box<dyn TrafficSource>,
    budget: u64,
) -> Measurement {
    let wall_s = drive(&mut sim, traffic.as_mut(), budget);
    let flit_hops: u64 = sim.metrics().link_flits().iter().sum();
    Measurement {
        name,
        cycles: budget,
        wall_s,
        cycles_per_sec: budget as f64 / wall_s,
        flit_hops,
        flit_hops_per_sec: flit_hops as f64 / wall_s,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// The paper's baseline: clean blackscholes traffic, mitigation on,
/// no trojans — exercises the steady-state hot loop and the idle tail.
fn baseline(budget: u64) -> Measurement {
    let mut cfg = SimConfig::paper();
    cfg.snapshot_interval = 1_000;
    let sim = Simulator::new(cfg);
    let mesh = sim.mesh().clone();
    let traffic = AppModel::new(AppSpec::blackscholes(), mesh, 7).until(budget * 2 / 3);
    measure("baseline", sim, Box::new(traffic), budget)
}

/// The trojan-flood storm: an unmitigated hotspot flood through an
/// infected link — every hop retransmits, so the SECDED codec and the
/// retransmission machinery dominate.
fn trojan_flood(budget: u64) -> Measurement {
    let mut cfg = SimConfig::paper_unprotected();
    cfg.snapshot_interval = 1_000;
    let mut sim = Simulator::new(cfg);
    let victim = NodeId(9);
    let hot = {
        let dir = xy_direction(sim.mesh(), NodeId(5), victim);
        sim.mesh()
            .link_out(NodeId(5), dir)
            .expect("adjacent routers share a link")
    };
    let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(victim.0)));
    let faults = std::mem::replace(sim.link_faults_mut(hot), LinkFaults::healthy(hot.0 as u64));
    *sim.link_faults_mut(hot) = faults.with_trojan(ht);
    sim.arm_trojans(true);
    let mesh = sim.mesh().clone();
    let traffic = SyntheticTraffic::new(mesh, Pattern::Hotspot(vec![victim]), 0.05, 0x0D15_EA5E)
        .until(budget * 3 / 5);
    measure("trojan_flood", sim, Box::new(traffic), budget)
}

fn json_scenario(out: &mut String, m: &Measurement, last: bool) {
    writeln!(out, "    \"{}\": {{", m.name).unwrap();
    writeln!(out, "      \"cycles\": {},", m.cycles).unwrap();
    writeln!(out, "      \"wall_s\": {:.6},", m.wall_s).unwrap();
    writeln!(out, "      \"cycles_per_sec\": {:.1},", m.cycles_per_sec).unwrap();
    writeln!(out, "      \"flit_hops\": {},", m.flit_hops).unwrap();
    writeln!(
        out,
        "      \"flit_hops_per_sec\": {:.1},",
        m.flit_hops_per_sec
    )
    .unwrap();
    writeln!(out, "      \"peak_rss_kb\": {}", m.peak_rss_kb).unwrap();
    writeln!(out, "    }}{}", if last { "" } else { "," }).unwrap();
}

/// Extract `"key": <number>` from a flat JSON document. Good enough for
/// the committed baseline file, whose shape this repo controls.
fn json_number(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let rest = doc[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = args.iter().any(|a| a == "--gate");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());

    let (base_budget, flood_budget) = if quick {
        (3_000, 1_500)
    } else {
        (20_000, 6_000)
    };

    eprintln!("cycles_per_sec: baseline ({base_budget} cycles)...");
    let base = baseline(base_budget);
    eprintln!(
        "  {:>12.0} cycles/s  {:>12.0} flit-hops/s  {} kB peak RSS",
        base.cycles_per_sec, base.flit_hops_per_sec, base.peak_rss_kb
    );
    eprintln!("cycles_per_sec: trojan_flood ({flood_budget} cycles)...");
    let flood = trojan_flood(flood_budget);
    eprintln!(
        "  {:>12.0} cycles/s  {:>12.0} flit-hops/s  {} kB peak RSS",
        flood.cycles_per_sec, flood.flit_hops_per_sec, flood.peak_rss_kb
    );

    let baseline_doc = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/baseline_throughput.json"
    ))
    .ok();
    let before = baseline_doc.as_deref().map(|doc| {
        (
            json_number(doc, "before_baseline_cps"),
            json_number(doc, "before_trojan_flood_cps"),
        )
    });

    let mut out = String::new();
    writeln!(out, "{{").unwrap();
    writeln!(
        out,
        "  \"mode\": \"{}\",",
        if quick { "quick" } else { "full" }
    )
    .unwrap();
    writeln!(out, "  \"scenarios\": {{").unwrap();
    json_scenario(&mut out, &base, false);
    json_scenario(&mut out, &flood, true);
    writeln!(out, "  }},").unwrap();
    if let Some((Some(b), Some(f))) = before {
        writeln!(out, "  \"before\": {{").unwrap();
        writeln!(out, "    \"baseline_cps\": {b:.1},").unwrap();
        writeln!(out, "    \"trojan_flood_cps\": {f:.1}").unwrap();
        writeln!(out, "  }},").unwrap();
        writeln!(out, "  \"speedup\": {{").unwrap();
        writeln!(out, "    \"baseline\": {:.2},", base.cycles_per_sec / b).unwrap();
        writeln!(out, "    \"trojan_flood\": {:.2}", flood.cycles_per_sec / f).unwrap();
        writeln!(out, "  }},").unwrap();
    }
    writeln!(out, "  \"peak_rss_kb\": {}", peak_rss_kb()).unwrap();
    writeln!(out, "}}").unwrap();
    std::fs::write(&out_path, &out).expect("write throughput report");
    eprintln!("cycles_per_sec: wrote {out_path}");

    if gate {
        let doc = baseline_doc.expect("--gate needs crates/bench/baseline_throughput.json");
        let mut failed = false;
        for (m, key) in [
            (&base, "gate_baseline_cps"),
            (&flood, "gate_trojan_flood_cps"),
        ] {
            let floor = json_number(&doc, key).expect("gate value in baseline JSON");
            let min = floor * 0.7;
            if m.cycles_per_sec < min {
                eprintln!(
                    "GATE FAIL: {} at {:.0} cycles/s is more than 30% below the \
                     committed baseline of {:.0}",
                    m.name, m.cycles_per_sec, floor
                );
                failed = true;
            } else {
                eprintln!(
                    "gate ok: {} at {:.0} cycles/s (floor {:.0})",
                    m.name, m.cycles_per_sec, min
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
