//! Regenerate **Table I**: power, area, and timing for each TASP variant,
//! side-by-side with the paper's synthesis numbers.
//!
//! Run: `cargo run --release -p noc-bench --bin table1_tasp_overhead`

use noc_bench::power_tables::{table1_model, table1_paper};
use noc_bench::table::{f, print_table};

fn main() {
    println!("=== Table I — TASP variants: model vs paper ===\n");
    let mut rows = Vec::new();
    for (kind, p) in table1_model() {
        let (pa, pd, pl, pt) = table1_paper(kind);
        rows.push(vec![
            kind.name().to_string(),
            f(p.area_um2, 2),
            f(pa, 2),
            f(p.dynamic_uw, 3),
            f(pd, 3),
            f(p.leakage_nw, 2),
            f(pl, 2),
            f(p.timing_ns, 2),
            f(pt, 2),
        ]);
    }
    print_table(
        &[
            "target",
            "area µm²",
            "(paper)",
            "dyn µW",
            "(paper)",
            "leak nW",
            "(paper)",
            "ns",
            "(paper)",
        ],
        &rows,
    );
    println!("\nEvery variant fits the 0.5 ns LT window at 2 GHz.");
}
