//! Regenerate **Fig. 12**: (a) TDM containment of the TASP DoS to the
//! attacked domain, and (b) minimal degradation under the proposed threat
//! detector + s2s L-Ob.
//!
//! Run: `cargo run --release -p noc-bench --bin fig12_mitigation`

use noc_bench::fig12::{compute_lob, compute_tdm};
use noc_bench::table::{f, pct, print_table};

fn main() {
    println!("=== Fig. 12(a) — TDM (two domains) under a single TASP ===\n");
    let tdm = compute_tdm(1500);
    let (rel_d1, rel_d2) = tdm.relative_throughput();
    print_table(
        &[
            "domain",
            "delivered (attacked)",
            "delivered (no HT)",
            "relative throughput",
            "mean latency",
        ],
        &[
            vec![
                "D1 (bystander)".into(),
                tdm.attacked[0].delivered.to_string(),
                tdm.baseline[0].delivered.to_string(),
                pct(rel_d1),
                f(tdm.attacked[0].mean_latency, 1),
            ],
            vec![
                "D2 (attacked)".into(),
                tdm.attacked[1].delivered.to_string(),
                tdm.baseline[1].delivered.to_string(),
                pct(rel_d2),
                f(tdm.attacked[1].mean_latency, 1),
            ],
        ],
    );
    println!("\nThe DoS is contained: D1 keeps delivering while D2 saturates.");

    println!("\n=== Fig. 12(b) — s2s L-Ob under the same attack ===\n");
    let lob = compute_lob(1500);
    let rows: Vec<Vec<String>> = lob
        .samples
        .iter()
        .filter(|s| s.t >= 0 && s.t % 200 == 0)
        .map(|s| {
            vec![
                s.t.to_string(),
                s.input_util.to_string(),
                s.injection_util.to_string(),
                s.all_cores_full.to_string(),
                s.blocked_port_routers.to_string(),
            ]
        })
        .collect();
    print_table(
        &["t", "input util", "inj util", "all cores full", "blocked"],
        &rows,
    );
    println!("\nMinimal degradation: only the 1–3 cycle s2s obfuscation penalty.");
}
