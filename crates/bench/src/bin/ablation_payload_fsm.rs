//! Ablation: payload-counter width `Y` — camouflage (distinct fault
//! locations before the pattern repeats) versus the trojan's own area and
//! leakage (its side-channel exposure while idle).
//!
//! Run: `cargo run --release -p noc-bench --bin ablation_payload_fsm`

use noc_bench::table::{f, print_table};
use noc_power::{CellLibrary, TaspPower};
use noc_trojan::PayloadFsm;
use std::collections::HashSet;

fn main() {
    println!("=== Ablation — TASP payload FSM width (camouflage vs exposure) ===\n");
    let mut rows = Vec::new();
    for y in 1..=8u8 {
        let mut fsm = PayloadFsm::new(y, 72);
        let states = fsm.num_states();
        let mut pairs = HashSet::new();
        for _ in 0..states {
            pairs.insert(fsm.inject());
        }
        let fixed = TaspPower::new(CellLibrary::tsmc40())
            .with_y_bits(y as u32)
            .fixed_block();
        rows.push(vec![
            y.to_string(),
            states.to_string(),
            pairs.len().to_string(),
            f(fixed.area_um2, 1),
            f(fixed.leakage_nw, 1),
        ]);
    }
    print_table(
        &[
            "Y bits",
            "states",
            "distinct wire pairs",
            "area µm²",
            "idle leak nW",
        ],
        &rows,
    );
    println!(
        "\nLarger Y spreads faults over more wire pairs (harder to classify as\n\
         a permanent fault) but costs area and idle leakage — the only\n\
         side-channel visible while the trojan is dormant."
    );
}
