//! Extension experiment — attack potency vs. trojan count (§III-A: "The
//! number of TASP HT injections should be minimized to circumvent
//! side-channel detection, but enough to achieve the desired disruption.
//! More HTs will increase the abruptness of the DoS attack.")
//!
//! Sweeps 1–8 trojans over the hottest links and reports how fast the
//! back-pressure milestones arrive, alongside the attacker's cumulative
//! side-channel exposure (idle leakage).
//!
//! Run: `cargo run --release -p noc-bench --bin exp_multi_trojan`

use htnoc_core::prelude::*;
use noc_bench::table::{f, print_table};
use noc_power::{CellLibrary, RouterPower, SideChannelModel, TaspPower};

struct Milestones {
    t_blocked_majority: Option<i64>,
    t_half_dead_majority: Option<i64>,
    peak_backlog: usize,
}

fn run(n_trojans: usize, horizon: u64) -> Milestones {
    let mesh = Mesh::paper();
    let app = AppSpec::blackscholes();
    let mut probe = AppModel::new(app.clone(), mesh.clone(), 7);
    let shares = TrafficMatrix::sample(&mut probe, 1500).link_shares_xy(&mesh);
    let infected: Vec<LinkId> = select_infected(&mesh, &shares, 1.0, None)
        .into_iter()
        .take(n_trojans)
        .collect();
    let mut sc = Scenario::paper_default(app, Strategy::Unprotected).with_infected(infected);
    sc.warmup = 1500;
    sc.inject_until = 1500 + horizon;
    sc.max_cycles = 1500 + horizon;
    sc.snapshot_interval = 10;
    let r = htnoc_core::run_scenario(&sc);
    let warm = 1500i64;
    let first = |pred: &dyn Fn(&noc_sim::Snapshot) -> bool| {
        r.stats
            .snapshots
            .iter()
            .find(|s| s.cycle as i64 - warm >= 0 && pred(s))
            .map(|s| s.cycle as i64 - warm)
    };
    Milestones {
        t_blocked_majority: first(&|s| s.routers_blocked_port >= 9),
        t_half_dead_majority: first(&|s| s.routers_half_cores_full >= 9),
        peak_backlog: r
            .stats
            .snapshots
            .iter()
            .map(|s| s.injection_util)
            .max()
            .unwrap_or(0),
    }
}

fn main() {
    println!("=== Extension — DoS abruptness vs number of TASP trojans ===\n");
    let router_leak = RouterPower::paper().total().leakage_nw;
    let per_trojan = TaspPower::new(CellLibrary::tsmc40())
        .variant(TargetKind::Dest)
        .leakage_nw;
    let sc_model = SideChannelModel {
        leakage_sigma_frac: 0.01,
        measurements: 1_000_000,
        threshold_sigma: 3.0,
    };
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8] {
        let m = run(n, 2000);
        let fmt = |t: Option<i64>| t.map(|t| t.to_string()).unwrap_or_else(|| "-".into());
        // Cumulative idle leakage over the victim region's routers drives
        // the attacker's exposure under high-quality measurement.
        let exposure = sc_model.snr(per_trojan * n as f64, router_leak);
        rows.push(vec![
            n.to_string(),
            fmt(m.t_blocked_majority),
            fmt(m.t_half_dead_majority),
            m.peak_backlog.to_string(),
            f(exposure, 1),
        ]);
    }
    print_table(
        &[
            "trojans",
            "t: >50% routers blocked",
            "t: >50% inj dead",
            "peak backlog",
            "lab-grade SNR",
        ],
        &rows,
    );
    println!(
        "\nMore trojans collapse the chip faster — and multiply the attacker's\n\
         idle-leakage footprint, which is the paper's minimise-but-suffice\n\
         placement argument."
    );
}
