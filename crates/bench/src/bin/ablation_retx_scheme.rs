//! Ablation: retransmission-buffer placement (shared at the output — the
//! paper's worst case — versus per-VC) under the TASP attack with and
//! without mitigation.
//!
//! Run: `cargo run --release -p noc-bench --bin ablation_retx_scheme`

use htnoc_core::prelude::*;
use noc_bench::fig10;
use noc_bench::table::print_table;

fn run(scheme: RetxScheme, strategy: Strategy) -> (u64, bool) {
    let app = AppSpec::blackscholes();
    let infected = fig10::infected_for(&app, 0.10, 3);
    let mut sc = Scenario::paper_default(app, strategy).with_infected(infected);
    sc.warmup = 300;
    sc.inject_until = 1200;
    sc.max_cycles = 30_000;
    sc.snapshot_interval = 50;
    // Compile the scenario, then override the retransmission scheme.
    let mut cfg = sc.sim_config();
    cfg.retx_scheme = scheme;
    let mut sim = Simulator::new(cfg);
    for (i, link) in sc.infected.iter().enumerate() {
        let ht = TaspHt::new(TaspConfig::new(sc.target.clone()));
        let faults = std::mem::replace(
            sim.link_faults_mut(*link),
            noc_sim::fault::LinkFaults::healthy(i as u64),
        );
        *sim.link_faults_mut(*link) = faults.with_trojan(ht);
    }
    let mut traffic = sc.build_traffic(sim.mesh());
    sim.run(sc.warmup, traffic.as_mut());
    sim.arm_trojans(true);
    while sim.cycle() < sc.max_cycles {
        sim.step(traffic.as_mut());
        if traffic.done() && sim.is_quiescent() {
            break;
        }
    }
    (sim.cycle(), sim.is_quiescent())
}

fn main() {
    println!("=== Ablation — retransmission buffer placement ===\n");
    let mut rows = Vec::new();
    for (scheme, name) in [
        (RetxScheme::Output, "output (shared)"),
        (RetxScheme::PerVc, "per-VC"),
    ] {
        for (strategy, sname) in [
            (Strategy::S2sLob, "s2s L-Ob"),
            (Strategy::Unprotected, "unprotected"),
        ] {
            let (cycles, drained) = run(scheme, strategy.clone());
            rows.push(vec![
                name.to_string(),
                sname.to_string(),
                if drained {
                    format!("{cycles}")
                } else {
                    format!(">{cycles} (stalled)")
                },
            ]);
        }
    }
    print_table(&["retx scheme", "defence", "completion cycles"], &rows);
    println!(
        "\nShared output buffers head-of-line block all VCs behind a NACKed\n\
         flit (the paper's worst case); per-VC slots confine the damage."
    );
}
