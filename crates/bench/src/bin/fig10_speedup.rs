//! Regenerate **Fig. 10**: speedup of continuing to use infected links
//! with s2s L-Ob versus rerouting (Ariadne), per application trace and
//! infected-link fraction.
//!
//! Run: `cargo run --release -p noc-bench --bin fig10_speedup [--quick]`

use htnoc_core::prelude::*;
use noc_bench::fig10;
use noc_bench::table::{f, pct, print_table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let apps = if quick {
        vec![AppSpec::blackscholes()]
    } else {
        AppSpec::all()
    };
    let fractions = [0.0, 0.05, 0.10, 0.15];
    println!("=== Fig. 10 — workload speedup: s2s L-Ob vs rerouting (Ariadne) ===\n");
    let rows_data = fig10::compute(apps, &fractions, 3);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                pct(r.infected_pct),
                f(r.lat_lob, 1),
                f(r.lat_reroute, 1),
                r.t_lob.to_string(),
                r.t_reroute.to_string(),
                f(r.speedup, 2),
            ]
        })
        .collect();
    print_table(
        &[
            "app",
            "infected",
            "lat(L-Ob)",
            "lat(reroute)",
            "t(L-Ob)",
            "t(reroute)",
            "speedup",
        ],
        &rows,
    );
    println!(
        "\nspeedup = workload completion(reroute) / completion(L-Ob); the\n\
         rerouting bar is 1.0 by construction, matching the paper's comparison.\n\
         Mean packet latencies are shown alongside (under rerouting they can\n\
         inflate far beyond the completion ratio when detours congest)."
    );
}
