//! Regenerate **Fig. 8**: router dynamic/leakage power pies, NoC area pie,
//! and the worst-case "TASP on all 48 links" NoC dynamic-power pie.
//!
//! Run: `cargo run --release -p noc-bench --bin fig8_power_pies`

use noc_bench::power_tables::{fig8_noc_pies, fig8_router_pies};
use noc_bench::table::{pct, print_table};

fn main() {
    println!("=== Fig. 8 — power and area breakdowns ===\n");

    println!(
        "Router power shares (paper: buffer 71/88, crossbar 18/9, SA 4/3, clock 6/~0, TASP 1/~0):"
    );
    let rows: Vec<Vec<String>> = fig8_router_pies()
        .into_iter()
        .map(|(name, d, l)| vec![name.to_string(), pct(d), pct(l)])
        .collect();
    print_table(&["component", "dynamic", "leakage"], &rows);

    let ((tasp_area, wire_area, active_area), (routers_dyn, tasp_dyn)) = fig8_noc_pies();
    println!("\nNoC area (paper: wires 86%, active 13%, TASP-on-all-links ~1%):");
    print_table(
        &["slice", "share"],
        &[
            vec!["TASP on all 48 links".into(), pct(tasp_area)],
            vec!["global wire area".into(), pct(wire_area)],
            vec!["active (router) area".into(), pct(active_area)],
        ],
    );

    println!("\nNoC dynamic power (paper: routers 99.44%, TASP on all 48 links 0.56%):");
    print_table(
        &["slice", "share"],
        &[
            vec!["routers".into(), pct(routers_dyn)],
            vec!["TASP on all 48 links".into(), pct(tasp_dyn)],
        ],
    );
}
