//! Regenerate **Fig. 2**: the latency-vs-distance impact of transient,
//! permanent, and hardware-trojan faults on a single link.
//!
//! Run: `cargo run --release -p noc-bench --bin fig2_fault_latency`

use noc_bench::fig2::{compute, FaultKind};
use noc_bench::table::{f, print_table};

fn main() {
    let cap = 3000;
    let points = compute(cap);
    println!("=== Fig. 2 — latency vs distance per fault type (cap {cap} cycles) ===\n");
    let kinds = [
        (FaultKind::None, "healthy"),
        (FaultKind::Transient, "transient (+retx)"),
        (FaultKind::Permanent, "permanent (+hops)"),
        (FaultKind::TrojanMitigated, "TASP + s2s L-Ob"),
        (FaultKind::TrojanUnprotected, "TASP unmitigated"),
    ];
    let headers: Vec<&str> = std::iter::once("distance")
        .chain(kinds.iter().map(|(_, n)| *n))
        .collect();
    let rows: Vec<Vec<String>> = (1..=6u32)
        .map(|d| {
            std::iter::once(format!("{d}"))
                .chain(kinds.iter().map(|(k, _)| {
                    let p = points
                        .iter()
                        .find(|p| p.distance == d && p.kind == *k)
                        .expect("computed");
                    if p.delivered {
                        f(p.latency, 1)
                    } else {
                        format!(">{cap} (stalled)")
                    }
                }))
                .collect()
        })
        .collect();
    print_table(&headers, &rows);
    println!(
        "\nShape: transient adds the 1–3 cycle retransmission penalty; permanent\n\
         adds rerouting hops; the mitigated trojan adds obfuscation penalties;\n\
         the unmitigated trojan stalls the flow outright."
    );
}
