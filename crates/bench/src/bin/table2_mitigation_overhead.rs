//! Regenerate **Table II**: area/power/timing overhead of the proposed
//! mitigation (threat detector + L-Ob) relative to the baseline router.
//!
//! Run: `cargo run --release -p noc-bench --bin table2_mitigation_overhead`

use noc_bench::power_tables::table2_model;
use noc_bench::table::{f, pct, print_table};

fn main() {
    println!("=== Table II — mitigation overhead (paper: ~2% area, ~6% power) ===\n");
    let (mit, router, (area_ovh, power_ovh)) = table2_model();
    let rows = vec![
        vec![
            "threat detector".to_string(),
            f(mit.detector.area_um2, 1),
            f(mit.detector.dynamic_uw, 1),
            f(mit.detector.leakage_nw, 1),
            f(mit.detector.timing_ns, 2),
        ],
        vec![
            "L-Ob block".to_string(),
            f(mit.lob.area_um2, 1),
            f(mit.lob.dynamic_uw, 1),
            f(mit.lob.leakage_nw, 1),
            f(mit.lob.timing_ns, 2),
        ],
        vec![
            "induced datapath activity".to_string(),
            "-".to_string(),
            f(mit.induced.dynamic_uw, 1),
            "-".to_string(),
            "-".to_string(),
        ],
        vec![
            "total".to_string(),
            f(mit.total().area_um2, 1),
            f(mit.total().dynamic_uw, 1),
            f(mit.total().leakage_nw, 1),
            f(mit.total().timing_ns, 2),
        ],
        vec![
            "baseline router".to_string(),
            f(router.total().area_um2, 0),
            f(router.total().dynamic_uw, 0),
            f(router.total().leakage_nw, 0),
            f(router.total().timing_ns, 2),
        ],
    ];
    print_table(&["block", "area µm²", "dyn µW", "leak nW", "ns"], &rows);
    println!(
        "\noverheads: area {} (paper ~2%), power {} (paper ~6%); both blocks fit the 2 GHz clock",
        pct(area_ovh),
        pct(power_ovh)
    );
}
