//! Ablation: threat-detector escalation thresholds — how many faults on
//! one flit before L-Ob engages (`lob_threshold`) and how many identical
//! syndromes before BIST runs (`bist_threshold`). Lower L-Ob thresholds
//! mitigate faster (fewer wasted retransmissions) but obfuscate more
//! transients needlessly; the measured columns quantify the trade.
//!
//! Run: `cargo run --release -p noc-bench --bin ablation_detector_thresholds`

use htnoc_core::prelude::*;
use noc_bench::table::{f, print_table};
use noc_mitigation::DetectorConfig;

fn run(lob_threshold: u32, bist_threshold: u32, transients: bool) -> (u64, u64, u64, f64) {
    let mesh = Mesh::paper();
    let app = AppSpec::blackscholes();
    let mut probe = AppModel::new(app.clone(), mesh.clone(), 7);
    let shares = TrafficMatrix::sample(&mut probe, 1500).link_shares_xy(&mesh);
    let infected: Vec<LinkId> = select_infected(&mesh, &shares, 1.0, None)
        .into_iter()
        .take(1)
        .collect();

    let mut cfg = SimConfig::paper();
    cfg.detector = DetectorConfig {
        lob_threshold,
        bist_threshold,
        ..DetectorConfig::default()
    };
    cfg.snapshot_interval = 50;
    let mut sim = Simulator::new(cfg);
    for l in &infected {
        let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(
            (app.primary.0 & 0xF) as u8,
        )));
        let faults = std::mem::replace(
            sim.link_faults_mut(*l),
            noc_sim::fault::LinkFaults::healthy(0),
        );
        *sim.link_faults_mut(*l) = faults.with_trojan(ht);
    }
    if transients {
        for l in mesh.all_links() {
            sim.link_faults_mut(l).transient_bit_prob = 0.0001;
        }
    }
    let mut traffic = AppModel::new(app, mesh, 9).until(1200);
    sim.run(400, &mut traffic);
    sim.arm_trojans(true);
    sim.run_to_quiescence(20_000, &mut traffic);
    let s = sim.stats();
    (
        s.retransmissions,
        s.bist_scans,
        s.delivered_packets,
        s.avg_latency(),
    )
}

fn main() {
    println!(
        "=== Ablation — detector escalation thresholds (single TASP + background transients) ===\n"
    );
    let mut rows = Vec::new();
    for lob in [1u32, 2, 3, 4] {
        for bist in [2u32, 3] {
            let (retx, bists, delivered, lat) = run(lob, bist, true);
            rows.push(vec![
                lob.to_string(),
                bist.to_string(),
                retx.to_string(),
                bists.to_string(),
                delivered.to_string(),
                f(lat, 1),
            ]);
        }
    }
    print_table(
        &[
            "L-Ob after N faults",
            "BIST after N repeats",
            "retransmissions",
            "BIST scans",
            "delivered",
            "avg latency",
        ],
        &rows,
    );
    println!(
        "\nThe paper escalates on the second fault (threshold 2, Fig. 7 step g):\n\
         threshold 1 obfuscates every transient (wasted undo penalties),\n\
         large thresholds burn retransmission rounds before mitigation bites."
    );
}
