//! Ablation: router buffer geometry (VCs per port × slots per VC) under
//! the attacked-and-mitigated workload. The paper fixes 4×4; this sweep
//! shows how much of the mitigation's effectiveness depends on that
//! choice (deeper buffers absorb the NACK round trips; more VCs keep
//! bystander classes flowing around a jammed one).
//!
//! Run: `cargo run --release -p noc-bench --bin ablation_buffer_geometry`

use htnoc_core::prelude::*;
use htnoc_core::sweep::par_map;
use noc_bench::table::{f, print_table};

fn run(vcs: u8, vc_depth: u8, mitigation: bool) -> (f64, u64, bool) {
    let mesh = Mesh::paper();
    let app = AppSpec::blackscholes();
    let mut probe = AppModel::new(app.clone(), mesh.clone(), 7);
    let shares = TrafficMatrix::sample(&mut probe, 1500).link_shares_xy(&mesh);
    let infected: Vec<LinkId> = select_infected(&mesh, &shares, 1.0, None)
        .into_iter()
        .take(1)
        .collect();
    let mut cfg = if mitigation {
        SimConfig::paper()
    } else {
        SimConfig::paper_unprotected()
    };
    cfg.vcs = vcs;
    cfg.vc_depth = vc_depth;
    cfg.snapshot_interval = 100;
    let mut sim = Simulator::new(cfg);
    for l in &infected {
        let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(
            (app.primary.0 & 0xF) as u8,
        )));
        let faults = std::mem::replace(
            sim.link_faults_mut(*l),
            noc_sim::fault::LinkFaults::healthy(0),
        );
        *sim.link_faults_mut(*l) = faults.with_trojan(ht);
    }
    // The app pins VCs 0..4; with fewer VCs remap by modulo through a
    // custom wrapper.
    struct ModVc<S>(S, u8);
    impl<S: noc_sim::TrafficSource> noc_sim::TrafficSource for ModVc<S> {
        fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
            let start = out.len();
            self.0.poll(cycle, out);
            for p in &mut out[start..] {
                p.vc = VcId(p.vc.0 % self.1);
            }
        }
        fn done(&self) -> bool {
            self.0.done()
        }
    }
    let mut src = ModVc(AppModel::new(app, mesh, 9).until(800), vcs);
    sim.run(200, &mut src);
    sim.arm_trojans(true);
    let drained = sim.run_to_quiescence(20_000, &mut src);
    (
        sim.stats().avg_latency(),
        sim.stats().retransmissions,
        drained,
    )
}

fn main() {
    println!("=== Ablation — buffer geometry under a single mitigated TASP ===\n");
    let grid: Vec<(u8, u8)> = vec![(2, 2), (2, 4), (4, 2), (4, 4), (4, 8), (8, 4)];
    let results = par_map(grid.clone(), None, |(vcs, depth)| {
        let with = run(vcs, depth, true);
        let without = run(vcs, depth, false);
        (vcs, depth, with, without)
    });
    let mut rows = Vec::new();
    for (vcs, depth, with, without) in results {
        rows.push(vec![
            format!("{vcs}x{depth}"),
            f(with.0, 1),
            with.1.to_string(),
            with.2.to_string(),
            without.2.to_string(),
        ]);
    }
    print_table(
        &[
            "VCs x depth",
            "latency (L-Ob)",
            "retransmits",
            "drains (L-Ob)",
            "drains (unprot.)",
        ],
        &rows,
    );
    println!(
        "\nMitigation effectiveness is geometry-independent (every L-Ob cell\n\
         drains; every unprotected cell starves) — the defence does not lean\n\
         on the paper's particular 4 VC x 4 slot choice."
    );
}
