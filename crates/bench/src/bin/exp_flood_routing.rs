//! Extension experiment — §III-A's routing claim under flood DoS:
//! background latency for XY vs odd-even adaptive routing, with and
//! without a software flood at one victim router.
//!
//! Run: `cargo run --release -p noc-bench --bin exp_flood_routing`
//!     `[--telemetry-out DIR [--telemetry-every N]]`
//!
//! With `--telemetry-out`, sweep progress is exported as it runs: an
//! atomically replaced Prometheus exposition (`DIR/metrics.prom`, cells
//! completed / total) plus an append-only heartbeat log
//! (`DIR/heartbeat.jsonl`) every `--telemetry-every` finished cells
//! (default 1). The computed table is identical either way.

use noc_bench::flood::compute_streamed;
use noc_bench::table::{f, print_table};
use noc_sim::TelemetryOut;

fn main() {
    let mut tel_dir: Option<std::path::PathBuf> = None;
    let mut tel_every: u64 = 1;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--telemetry-out" => tel_dir = Some(value("--telemetry-out").into()),
            "--telemetry-every" => {
                tel_every = value("--telemetry-every").parse().unwrap_or_else(|_| {
                    eprintln!("--telemetry-every needs an item count");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!(
                    "usage: exp_flood_routing [--telemetry-out DIR [--telemetry-every N]] \
                     (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }
    let mut telemetry = tel_dir.map(|dir| {
        TelemetryOut::new(&dir, tel_every).unwrap_or_else(|e| {
            eprintln!("exp_flood_routing: cannot open {}: {e}", dir.display());
            std::process::exit(2);
        })
    });
    println!("=== Extension — XY vs odd-even adaptive routing under flood DoS ===\n");
    let rates = [0.01, 0.02, 0.03];
    let cells = compute_streamed(&rates, 1200, 7, telemetry.as_mut());
    let mut rows = Vec::new();
    for &rate in &rates {
        for (adaptive, name) in [(false, "XY"), (true, "odd-even")] {
            let clean = cells
                .iter()
                .find(|c| c.adaptive == adaptive && !c.flooded && c.rate == rate)
                .unwrap();
            let flooded = cells
                .iter()
                .find(|c| c.adaptive == adaptive && c.flooded && c.rate == rate)
                .unwrap();
            rows.push(vec![
                format!("{rate}"),
                name.to_string(),
                f(clean.bg_latency, 1),
                f(flooded.bg_latency, 1),
                f(flooded.bg_latency / clean.bg_latency, 2),
                format!("{}/{}", flooded.bg_delivered, flooded.bg_injected),
            ]);
        }
    }
    print_table(
        &[
            "bg rate",
            "routing",
            "clean lat",
            "flooded lat",
            "slowdown",
            "bg delivered",
        ],
        &rows,
    );
    println!(
        "\nThe paper's §III-A observation: below saturation, XY confines the\n\
         flood's saturation tree to the victim's row/column while minimal\n\
         adaptive routing spreads it — so XY's background slowdown is smaller."
    );
}
