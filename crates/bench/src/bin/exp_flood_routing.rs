//! Extension experiment — §III-A's routing claim under flood DoS:
//! background latency for XY vs odd-even adaptive routing, with and
//! without a software flood at one victim router.
//!
//! Run: `cargo run --release -p noc-bench --bin exp_flood_routing`

use noc_bench::flood::compute;
use noc_bench::table::{f, print_table};

fn main() {
    println!("=== Extension — XY vs odd-even adaptive routing under flood DoS ===\n");
    let rates = [0.01, 0.02, 0.03];
    let cells = compute(&rates, 1200, 7);
    let mut rows = Vec::new();
    for &rate in &rates {
        for (adaptive, name) in [(false, "XY"), (true, "odd-even")] {
            let clean = cells
                .iter()
                .find(|c| c.adaptive == adaptive && !c.flooded && c.rate == rate)
                .unwrap();
            let flooded = cells
                .iter()
                .find(|c| c.adaptive == adaptive && c.flooded && c.rate == rate)
                .unwrap();
            rows.push(vec![
                format!("{rate}"),
                name.to_string(),
                f(clean.bg_latency, 1),
                f(flooded.bg_latency, 1),
                f(flooded.bg_latency / clean.bg_latency, 2),
                format!("{}/{}", flooded.bg_delivered, flooded.bg_injected),
            ]);
        }
    }
    print_table(
        &[
            "bg rate",
            "routing",
            "clean lat",
            "flooded lat",
            "slowdown",
            "bg delivered",
        ],
        &rows,
    );
    println!(
        "\nThe paper's §III-A observation: below saturation, XY confines the\n\
         flood's saturation tree to the victim's row/column while minimal\n\
         adaptive routing spreads it — so XY's background slowdown is smaller."
    );
}
