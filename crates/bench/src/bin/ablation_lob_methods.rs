//! Ablation: which L-Ob method defeats which TASP comparator, and at what
//! undo penalty. A method "defeats" a target when the obfuscated wire word
//! no longer matches the trojan's comparator.
//!
//! Run: `cargo run --release -p noc-bench --bin ablation_lob_methods`

use noc_bench::table::print_table;
use noc_mitigation::LobPlan;
use noc_trojan::{TargetKind, TargetSpec};
use noc_types::{Header, NodeId, VcId};

fn spec_for(kind: TargetKind, h: &Header) -> TargetSpec {
    use noc_trojan::FieldMatch::Exact;
    match kind {
        TargetKind::Full => TargetSpec {
            src: Some(Exact((h.src.0 & 0xF) as u8)),
            dest: Some(Exact((h.dest.0 & 0xF) as u8)),
            vc: Some(Exact(h.vc.0)),
            mem: Some(Exact(h.mem_addr)),
        },
        TargetKind::Dest => TargetSpec::dest((h.dest.0 & 0xF) as u8),
        TargetKind::Src => TargetSpec::src((h.src.0 & 0xF) as u8),
        TargetKind::DestSrc => TargetSpec::flow((h.src.0 & 0xF) as u8, (h.dest.0 & 0xF) as u8),
        TargetKind::Mem => TargetSpec {
            mem: Some(Exact(h.mem_addr)),
            ..TargetSpec::default()
        },
        TargetKind::Vc => TargetSpec {
            vc: Some(Exact(h.vc.0)),
            ..TargetSpec::default()
        },
    }
}

fn main() {
    println!("=== Ablation — L-Ob ladder methods vs TASP comparators ===\n");
    // A representative header population; a method must hide every one.
    let headers: Vec<Header> = (0..64u32)
        .map(|i| Header {
            src: NodeId((i % 16) as u16),
            dest: NodeId(((i * 7) % 16) as u16),
            vc: VcId((i % 4) as u8),
            mem_addr: 0x1000_0000 | (i * 0x91),
            thread: (i % 4) as u8,
            len: 4,
        })
        .collect();
    let mut rows = Vec::new();
    for (rung, plan) in LobPlan::LADDER.iter().enumerate() {
        let mut cols = vec![
            format!("{rung}: {:?}/{:?}", plan.method, plan.granularity),
            plan.method.undo_penalty().to_string(),
        ];
        for kind in TargetKind::ALL {
            let defeated = headers.iter().all(|h| {
                let spec = spec_for(kind, h);
                let wire = plan.apply(h.pack(), 0xA5A5_5A5A_DEAD_BEEF);
                !spec.matches_wire(wire)
            });
            cols.push(if defeated { "yes" } else { "NO" }.to_string());
        }
        rows.push(cols);
    }
    let headers_row = [
        "ladder rung",
        "penalty",
        "Full",
        "Dest",
        "Src",
        "Dest_Src",
        "Mem",
        "VC",
    ];
    print_table(&headers_row, &rows);
    println!(
        "\n`NO` marks residual exposure (e.g. a rotation that happens to map a\n\
         field onto an identical value); the ladder escalates until a method\n\
         crosses cleanly, and the success is logged per link."
    );
}
