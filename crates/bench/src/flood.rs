//! §III-A side claim — "In a flood-based DoS attack, x-y routing performs
//! better than multiple adaptive algorithms when the injection rate is
//! less than 0.65": background traffic latency under XY vs odd-even
//! adaptive routing, with and without a software flood attack.
//!
//! Intuition: adaptive routing spreads a hotspot's congestion over
//! neighbouring columns, dragging bystander flows into the saturation
//! tree; XY confines the flood's back-pressure to the victim's row/column.

use htnoc_core::prelude::*;
use noc_sim::routing::Routing;
use noc_traffic::flood::WithFlood;
use noc_traffic::FloodAttack;
use noc_types::CoreId;

/// One measured cell.
#[derive(Debug, Clone, Copy)]
pub struct FloodCell {
    /// Whether odd-even adaptive routing was used.
    pub adaptive: bool,
    /// Whether the flood was active.
    pub flooded: bool,
    /// Background injection rate (packets/core/cycle).
    pub rate: f64,
    /// Mean latency of *delivered background* packets (flood packets are
    /// excluded by id range).
    pub bg_latency: f64,
    /// Background packets delivered.
    pub bg_delivered: u64,
    /// Background packets offered.
    pub bg_injected: u64,
}

/// Run one cell: uniform background at `rate`, optionally flooded by four
/// rogue cores aiming at one victim router.
pub fn run_cell(adaptive: bool, flooded: bool, rate: f64, cycles: u64, seed: u64) -> FloodCell {
    let mesh = Mesh::paper();
    let mut sim = Simulator::new(SimConfig::paper());
    if adaptive {
        sim.set_routing(Routing::OddEven);
    }
    let background =
        SyntheticTraffic::new(mesh.clone(), Pattern::UniformRandom, rate, seed).until(cycles);
    let flood_rate: f64 = if flooded { 1.0 } else { 0.0 };
    let flood = FloodAttack::new(
        mesh,
        vec![
            CoreId(12),
            CoreId(13),
            CoreId(14),
            CoreId(15), // router 3
            CoreId(48),
            CoreId(49),
            CoreId(50),
            CoreId(51), // router 12
        ],
        vec![NodeId(6), NodeId(9)],
        seed + 1,
    )
    .with_rate(flood_rate.max(1e-9))
    .window(
        if flooded { 0 } else { u64::MAX - 1 },
        if flooded { cycles } else { u64::MAX },
    );
    let mut src = WithFlood { background, flood };
    sim.run(cycles + 600, &mut src);
    // Background packets have ids < 2^48 (the flood offsets its own).
    let mut lat_sum = 0u64;
    let mut delivered = 0u64;
    for e in sim.drain_events() {
        if let SimEvent::PacketDelivered {
            packet,
            injected_at,
            delivered_at,
            ..
        } = e
        {
            if packet.0 < (1 << 48) {
                delivered += 1;
                lat_sum += delivered_at - injected_at;
            }
        }
    }
    let injected = src.background.packets_issued();
    FloodCell {
        adaptive,
        flooded,
        rate,
        bg_latency: lat_sum as f64 / delivered.max(1) as f64,
        bg_delivered: delivered,
        bg_injected: injected,
    }
}

/// The full comparison grid.
pub fn compute(rates: &[f64], cycles: u64, seed: u64) -> Vec<FloodCell> {
    compute_streamed(rates, cycles, seed, None)
}

/// [`compute`] with optional sweep-progress telemetry: when `out` is
/// set, interval Prometheus expositions and heartbeat records land in
/// its directory as cells finish (the results are unchanged).
pub fn compute_streamed(
    rates: &[f64],
    cycles: u64,
    seed: u64,
    out: Option<&mut noc_sim::TelemetryOut>,
) -> Vec<FloodCell> {
    let mut jobs = Vec::new();
    for &rate in rates {
        for adaptive in [false, true] {
            for flooded in [false, true] {
                jobs.push((adaptive, flooded, rate));
            }
        }
    }
    let run = |(a, f, r): (bool, bool, f64)| run_cell(a, f, r, cycles, seed);
    match out {
        Some(out) => {
            htnoc_core::sweep::par_map_telemetry(jobs, None, out, "exp_flood_routing", run)
        }
        None => htnoc_core::sweep::par_map(jobs, None, run),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_routing_delivers_uniform_traffic() {
        // Deadlock-freedom smoke test for odd-even under the full simulator.
        let cell = run_cell(true, false, 0.02, 600, 3);
        assert!(cell.bg_delivered > 0);
        assert!(
            cell.bg_delivered as f64 / cell.bg_injected as f64 > 0.95,
            "{}/{}",
            cell.bg_delivered,
            cell.bg_injected
        );
    }

    #[test]
    fn flood_hurts_and_xy_contains_it_better() {
        let xy = run_cell(false, true, 0.02, 800, 3);
        let xy_clean = run_cell(false, false, 0.02, 800, 3);
        let oe = run_cell(true, true, 0.02, 800, 3);
        // The flood visibly degrades background latency.
        assert!(
            xy.bg_latency > xy_clean.bg_latency * 1.2,
            "flood must bite: {} vs {}",
            xy.bg_latency,
            xy_clean.bg_latency
        );
        // The paper's claim at sub-saturation rates: XY suffers less than
        // the adaptive network (which spreads the saturation tree).
        assert!(
            xy.bg_latency <= oe.bg_latency * 1.25,
            "XY should not lose badly under flood: xy {} vs oe {}",
            xy.bg_latency,
            oe.bg_latency
        );
    }
}
