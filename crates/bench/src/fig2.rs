//! Fig. 2 — latency-vs-distance impact of the three fault types on a
//! single link: transient faults cost a retransmission (1–3 cycles),
//! permanent faults cost rerouting (+hops), and a trojan under L-Ob costs
//! the obfuscation penalty per traversal. An unmitigated trojan stalls the
//! flow outright (latency unbounded — reported as the simulation cap).

use htnoc_core::prelude::*;
use noc_sim::fault::StuckWires;
use noc_sim::routing::{RouteTables, Routing};
use noc_types::PacketId;

/// Fault condition applied to the first hop's link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// No fault mounted (baseline).
    None,
    /// Uncorrectable transient strikes (forced, one per first crossing).
    Transient,
    /// Stuck wires: the link is rerouted around.
    Permanent,
    /// TASP targeting the flow, with s2s L-Ob mitigation enabled.
    TrojanMitigated,
    /// TASP targeting the flow, no mitigation (never delivers).
    TrojanUnprotected,
}

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct LatencyPoint {
    /// Hop distance of the measured flow.
    pub distance: u32,
    /// The fault condition applied.
    pub kind: FaultKind,
    /// Average packet latency in cycles (capped for stalled flows).
    pub latency: f64,
    /// Whether all packets arrived.
    pub delivered: bool,
}

/// A fixed stream of packets from router 0 to a router `distance` hops
/// east/north, sent one at a time.
struct Flow {
    packets: Vec<Packet>,
}

impl noc_sim::TrafficSource for Flow {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        let mut i = 0;
        while i < self.packets.len() {
            if self.packets[i].created_at == cycle {
                out.push(self.packets.remove(i));
            } else {
                i += 1;
            }
        }
    }
    fn done(&self) -> bool {
        self.packets.is_empty()
    }
}

fn dest_at_distance(mesh: &Mesh, d: u32) -> NodeId {
    // Walk east then north from router 0.
    let mut x = 0u8;
    let mut y = 0u8;
    for _ in 0..d {
        if x + 1 < mesh.width() {
            x += 1;
        } else {
            y += 1;
        }
    }
    mesh.node_at(noc_types::Coord::new(x, y))
}

/// Measure one point. `cap` bounds stalled runs.
pub fn measure(distance: u32, kind: FaultKind, cap: u64) -> LatencyPoint {
    let mesh = Mesh::paper();
    let dest = dest_at_distance(&mesh, distance);
    let cfg = match kind {
        FaultKind::TrojanUnprotected => SimConfig::paper_unprotected(),
        _ => SimConfig::paper(),
    };
    let mut sim = Simulator::new(cfg);
    let first_link = mesh
        .link_out(
            NodeId(0),
            noc_sim::routing::xy_direction(&mesh, NodeId(0), dest),
        )
        .expect("first hop exists");
    match kind {
        FaultKind::None => {}
        FaultKind::Transient => {
            // Forced uncorrectable double-flip on every traversal of the
            // first crossing window: model as a high per-bit probability for
            // a short window is nondeterministic; instead mount a trojan
            // matching everything once — the cost is identical (one
            // detected-uncorrectable + retransmission). We use stuck wires
            // cleared after the first NACK via transient probability:
            // simplest deterministic equivalent is a TargetSpec matching the
            // flow with a large cooldown so exactly the first head is hit.
            let ht = TaspHt::new(
                TaspConfig::new(TargetSpec::dest((dest.0 & 0xF) as u8)).with_cooldown(u32::MAX),
            );
            let faults = std::mem::replace(
                sim.link_faults_mut(first_link),
                noc_sim::fault::LinkFaults::healthy(0),
            );
            *sim.link_faults_mut(first_link) = faults.with_trojan(ht);
            sim.arm_trojans(true);
        }
        FaultKind::Permanent => {
            sim.link_faults_mut(first_link).stuck = StuckWires {
                stuck_one: (1 << 5) | (1 << 50),
                stuck_zero: 0,
            };
            // The fault-tolerant response: disable and reroute.
            let tables = RouteTables::build(&mesh, &[first_link]);
            sim.set_routing(Routing::Table(tables));
            sim.set_dead_links(vec![first_link]);
        }
        FaultKind::TrojanMitigated | FaultKind::TrojanUnprotected => {
            let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest((dest.0 & 0xF) as u8)));
            let faults = std::mem::replace(
                sim.link_faults_mut(first_link),
                noc_sim::fault::LinkFaults::healthy(0),
            );
            *sim.link_faults_mut(first_link) = faults.with_trojan(ht);
            sim.arm_trojans(true);
        }
    }
    // Ten packets, spaced out to avoid self-congestion.
    let packets = (0..10u64)
        .map(|i| {
            Packet::new(
                PacketId(i),
                NodeId(0),
                dest,
                VcId((i % 4) as u8),
                0,
                0,
                1,
                i * 40,
            )
        })
        .collect();
    let mut flow = Flow { packets };
    let drained = sim.run_to_quiescence(cap, &mut flow);
    let delivered = drained && sim.stats().delivered_packets == 10;
    let latency = if delivered {
        sim.stats().avg_latency()
    } else {
        cap as f64
    };
    LatencyPoint {
        distance,
        kind,
        latency,
        delivered,
    }
}

/// The full Fig. 2 sweep.
pub fn compute(cap: u64) -> Vec<LatencyPoint> {
    let mut out = Vec::new();
    for d in 1..=6 {
        for kind in [
            FaultKind::None,
            FaultKind::Transient,
            FaultKind::Permanent,
            FaultKind::TrojanMitigated,
            FaultKind::TrojanUnprotected,
        ] {
            out.push(measure(d, kind, cap));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(points: &[LatencyPoint], d: u32, k: FaultKind) -> LatencyPoint {
        *points
            .iter()
            .find(|p| p.distance == d && p.kind == k)
            .unwrap()
    }

    #[test]
    fn fault_type_latency_ordering_matches_figure2() {
        let pts = compute(3000);
        for d in [1u32, 3] {
            let base = point(&pts, d, FaultKind::None);
            let transient = point(&pts, d, FaultKind::Transient);
            let permanent = point(&pts, d, FaultKind::Permanent);
            let trojan = point(&pts, d, FaultKind::TrojanMitigated);
            let unprot = point(&pts, d, FaultKind::TrojanUnprotected);
            assert!(base.delivered && transient.delivered && trojan.delivered);
            assert!(permanent.delivered);
            // Transient: small retransmission penalty over baseline.
            assert!(transient.latency > base.latency);
            assert!(transient.latency < base.latency + 8.0);
            // Permanent: pays extra hops (5 cycles per hop).
            assert!(permanent.latency > base.latency + 4.0);
            // Mitigated trojan: obfuscation penalties, bounded.
            assert!(trojan.latency > base.latency);
            // Unprotected trojan: never delivers — charged the cap.
            assert!(!unprot.delivered);
            assert_eq!(unprot.latency, 3000.0);
        }
    }

    #[test]
    fn baseline_latency_grows_linearly_with_distance() {
        let pts = compute(3000);
        let l1 = point(&pts, 1, FaultKind::None).latency;
        let l4 = point(&pts, 4, FaultKind::None).latency;
        // ~5 cycles per extra hop.
        let per_hop = (l4 - l1) / 3.0;
        assert!((4.0..=6.5).contains(&per_hop), "per-hop {per_hop}");
    }
}
