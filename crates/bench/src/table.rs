//! Minimal fixed-width table printing for the harness binaries.

/// Print a header row followed by data rows, all columns right-aligned to
/// the widest cell.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        println!("{s}");
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format a float with `d` decimals.
pub fn f(v: f64, d: usize) -> String {
    format!("{v:.d$}")
}

/// Format a percentage with one decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.0567), "5.7%");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        print_table(&["a", "b"], &[vec!["1".into()]]);
    }
}
