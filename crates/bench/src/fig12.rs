//! Fig. 12 — (a) a TDM NoC (two domains) under a single TASP: the DoS is
//! contained to the attacked domain; (b) the proposed threat detector +
//! s2s L-Ob: minimal degradation for everyone.

use crate::fig11::UtilSample;
use htnoc_core::prelude::*;
use std::collections::HashSet;

/// Per-domain outcome of one TDM run.
#[derive(Debug, Clone, Copy)]
pub struct DomainOutcome {
    /// Packets the domain offered.
    pub injected: u64,
    /// Packets the domain received.
    pub delivered: u64,
    /// Mean latency of delivered packets.
    pub mean_latency: f64,
}

impl DomainOutcome {
    /// delivered / injected.
    pub fn delivery_ratio(&self) -> f64 {
        self.delivered as f64 / self.injected.max(1) as f64
    }
}

/// Fig. 12(a) data: both domains, attacked and baseline runs.
#[derive(Debug, Clone)]
pub struct TdmData {
    /// Whole-network utilisation samples.
    pub samples: Vec<UtilSample>,
    /// D1 = bystander domain, D2 = attacked domain.
    pub attacked: [DomainOutcome; 2],
    /// Per-domain outcomes with the trojan armed.
    pub baseline: [DomainOutcome; 2],
}

impl TdmData {
    /// Throughput of each domain relative to its own no-trojan baseline —
    /// the containment metric: D1 ≈ 1.0, D2 ≪ 1.0.
    pub fn relative_throughput(&self) -> (f64, f64) {
        (
            self.attacked[0].delivered as f64 / self.baseline[0].delivered.max(1) as f64,
            self.attacked[1].delivered as f64 / self.baseline[1].delivered.max(1) as f64,
        )
    }
}

/// Two app models with exact per-domain packet attribution.
struct TwoDomains {
    d1: AppModel,
    d2: AppModel,
    ids: [HashSet<noc_types::PacketId>; 2],
}

impl noc_sim::TrafficSource for TwoDomains {
    fn poll(&mut self, cycle: u64, out: &mut Vec<Packet>) {
        let start = out.len();
        self.d1.poll(cycle, out);
        for p in &out[start..] {
            self.ids[0].insert(p.id);
        }
        let mid = out.len();
        self.d2.poll(cycle, out);
        for p in &out[mid..] {
            self.ids[1].insert(p.id);
        }
    }
    fn done(&self) -> bool {
        self.d1.done() && self.d2.done()
    }
}

fn run_tdm(armed: bool, horizon: u64) -> (Vec<UtilSample>, [DomainOutcome; 2]) {
    let mesh = Mesh::paper();
    // Each domain gets half the fabric, so each runs its application at
    // half rate (time-multiplexing trades bandwidth for isolation).
    let mut victim = AppSpec::blackscholes();
    victim.rate /= 2.0;
    let mut bystander = AppSpec::ferret();
    bystander.rate /= 2.0;
    let infected: Vec<LinkId> = {
        let mut model = AppModel::new(victim.clone(), mesh.clone(), 7);
        let shares = noc_traffic::TrafficMatrix::sample(&mut model, 1500).link_shares_xy(&mesh);
        select_infected(&mesh, &shares, 1.0, None)
            .into_iter()
            .take(1)
            .collect()
    };

    let mut cfg = SimConfig::paper();
    cfg.mitigation = false;
    cfg.qos = QosMode::Tdm { domains: 2 };
    cfg.retx_scheme = RetxScheme::PerVc;
    cfg.snapshot_interval = 10;
    let mut sim = Simulator::new(cfg);
    for (i, l) in infected.iter().enumerate() {
        // The attacker hunts the *victim application*: its memory range is
        // the discriminating target (both domains talk to overlapping
        // routers, but address spaces are disjoint).
        let target = TargetSpec::mem_range(victim.mem_base..=victim.mem_base | 0x00FF_FFFF);
        let ht = TaspHt::new(TaspConfig::new(target));
        let faults = std::mem::replace(
            sim.link_faults_mut(*l),
            noc_sim::fault::LinkFaults::healthy(i as u64),
        );
        *sim.link_faults_mut(*l) = faults.with_trojan(ht);
    }

    let warmup = 1500u64;
    let until = warmup + horizon;
    // D2 (the victim) lives on the odd-domain VCs {1,3}; D1 on {0,2}.
    // Packet ids must not collide across the two models, so offset D2's.
    let d1 = AppModel::new(bystander, mesh.clone(), 21)
        .until(until)
        .with_vcs(vec![0, 2]);
    let d2 = AppModel::new(victim, mesh, 22)
        .until(until)
        .with_vcs(vec![1, 3])
        .with_packet_id_offset(1 << 32);
    let mut src = TwoDomains {
        d1,
        d2,
        ids: [HashSet::new(), HashSet::new()],
    };
    sim.run(warmup, &mut src);
    sim.arm_trojans(armed);
    sim.run(horizon, &mut src);

    let events = sim.drain_events();
    let mut delivered = [0u64; 2];
    let mut lat = [0u64; 2];
    for e in &events {
        if let SimEvent::PacketDelivered {
            packet,
            injected_at,
            delivered_at,
            ..
        } = e
        {
            for d in 0..2 {
                if src.ids[d].contains(packet) {
                    delivered[d] += 1;
                    lat[d] += delivered_at - injected_at;
                }
            }
        }
    }
    let outcome = |d: usize| DomainOutcome {
        injected: src.ids[d].len() as u64,
        delivered: delivered[d],
        mean_latency: lat[d] as f64 / delivered[d].max(1) as f64,
    };
    let warm = warmup as i64;
    let samples = sim
        .stats()
        .snapshots
        .iter()
        .map(|s| UtilSample {
            t: s.cycle as i64 - warm,
            input_util: s.input_util,
            output_util: s.output_util,
            injection_util: s.injection_util,
            all_cores_full: s.routers_all_cores_full,
            half_cores_full: s.routers_half_cores_full,
            blocked_port_routers: s.routers_blocked_port,
            delivered_delta: s.delivered_flits,
            retx_delta: s.retransmissions,
            uncorrectable_delta: s.uncorrectable_faults,
        })
        .collect();
    (samples, [outcome(0), outcome(1)])
}

/// Run the TDM panel (attacked + baseline).
pub fn compute_tdm(horizon: u64) -> TdmData {
    let (samples, attacked) = run_tdm(true, horizon);
    let (_, baseline) = run_tdm(false, horizon);
    TdmData {
        samples,
        attacked,
        baseline,
    }
}

/// The (b) panel: same attack, the paper's s2s L-Ob mitigation.
pub fn compute_lob(horizon: u64) -> crate::fig11::Fig11Data {
    crate::fig11::compute(Strategy::S2sLob, 1, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdm_contains_the_dos_to_the_attacked_domain() {
        let data = compute_tdm(1200);
        let (rel_d1, rel_d2) = data.relative_throughput();
        assert!(
            rel_d1 > 0.85,
            "bystander domain must be nearly unaffected: {rel_d1}"
        );
        assert!(
            rel_d2 < rel_d1 - 0.10,
            "victim domain must visibly suffer: D2 {rel_d2} vs D1 {rel_d1}"
        );
    }

    #[test]
    fn lob_panel_keeps_the_network_flowing() {
        let mitigated = compute_lob(1500);
        let unprotected = crate::fig11::compute(Strategy::Unprotected, 1, 1500);
        let clean = crate::fig11::compute(Strategy::Unprotected, 0, 1500);
        let peak = |d: &crate::fig11::Fig11Data| {
            d.samples
                .iter()
                .filter(|s| s.t >= 0)
                .map(|s| s.injection_util)
                .max()
                .unwrap_or(0)
        };
        assert!(
            peak(&mitigated) * 3 < peak(&unprotected).max(1),
            "L-Ob must prevent injection-queue explosion: {} vs {}",
            peak(&mitigated),
            peak(&unprotected)
        );
        // Under L-Ob the network behaves like the no-trojan baseline
        // (Fig. 12(b): "minimal network degradation").
        assert!(
            peak(&mitigated) <= peak(&clean) * 2,
            "L-Ob must track the clean baseline: {} vs {}",
            peak(&mitigated),
            peak(&clean)
        );
        let worst = |d: &crate::fig11::Fig11Data| {
            d.samples
                .iter()
                .map(|s| s.all_cores_full)
                .max()
                .unwrap_or(0)
        };
        assert!(
            worst(&mitigated) <= worst(&clean) + 1,
            "mitigated core stalls {} vs clean {}",
            worst(&mitigated),
            worst(&clean)
        );
    }
}
