//! Microbenchmarks of the hot paths every experiment leans on: SECDED
//! encode/decode, TASP snooping, L-Ob transforms, and a raw simulator
//! cycle.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use htnoc_core::prelude::*;
use noc_ecc::{flip_bit, flip_bits, Secded};
use noc_mitigation::LobPlan;
use noc_sim::routing::xy_direction;
use noc_sim::telemetry::PHASE_LABELS;
use noc_sim::{LinkFaults, TelemetryConfig, TrafficSource};
use noc_traffic::{Pattern, SyntheticTraffic};

fn bench_secded(c: &mut Criterion) {
    let mut g = c.benchmark_group("secded");
    let data = 0x0123_4567_89AB_CDEFu64;
    let cw = Secded::encode(data);
    g.bench_function("encode", |b| b.iter(|| Secded::encode(black_box(data))));
    g.bench_function("decode_clean", |b| b.iter(|| Secded::decode(black_box(cw))));
    let one = flip_bit(cw, 17);
    g.bench_function("decode_corrected", |b| {
        b.iter(|| Secded::decode(black_box(one)))
    });
    let two = flip_bits(cw, (1 << 3) | (1 << 40));
    g.bench_function("decode_uncorrectable", |b| {
        b.iter(|| Secded::decode(black_box(two)))
    });
    // Streaming shape of the table-driven kernel: 64 distinct words per
    // iteration, the per-flit pattern the link layer actually drives
    // (encode at launch, decode at delivery).
    let words: Vec<u64> = (0..64u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    g.bench_function("encode_decode_stream64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &w in &words {
                let cw = Secded::encode(black_box(w));
                if let noc_ecc::Decode::Clean { data } = Secded::decode(cw) {
                    acc ^= data;
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_tasp(c: &mut Criterion) {
    let mut g = c.benchmark_group("tasp");
    let mut ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(9)));
    ht.set_kill_switch(true);
    let hit = Header {
        src: NodeId(0),
        dest: NodeId(9),
        vc: VcId(0),
        mem_addr: 0,
        thread: 0,
        len: 1,
    }
    .pack();
    let miss = Header {
        src: NodeId(0),
        dest: NodeId(5),
        vc: VcId(0),
        mem_addr: 0,
        thread: 0,
        len: 1,
    }
    .pack();
    let mut cycle = 0u64;
    g.bench_function("snoop_miss", |b| {
        b.iter(|| {
            cycle += 1;
            ht.snoop(cycle, black_box(miss), true)
        })
    });
    g.bench_function("snoop_hit", |b| {
        b.iter(|| {
            cycle += 1;
            ht.snoop(cycle, black_box(hit), true)
        })
    });
    g.finish();
}

fn bench_lob(c: &mut Criterion) {
    let mut g = c.benchmark_group("lob");
    let word = 0xFEED_FACE_CAFE_F00Du64;
    for (i, plan) in LobPlan::LADDER.iter().enumerate() {
        g.bench_function(&format!("apply_undo_rung{i}"), |b| {
            b.iter(|| {
                let obf = plan.apply(black_box(word), 0x1234);
                plan.undo(obf, 0x1234)
            })
        });
    }
    g.finish();
}

fn bench_sim_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("step_loaded_64core", |b| {
        let mut sim = Simulator::new(SimConfig::paper());
        let mut traffic = AppModel::new(AppSpec::blackscholes(), Mesh::paper(), 7);
        sim.run(500, &mut traffic); // warm the network
        b.iter(|| sim.step(&mut traffic));
    });
    // The active-set fast path: a fully drained network where every
    // router is quiescent. Measures the per-cycle floor (activity
    // refresh + link scans), which the loaded case pays on top of.
    g.bench_function("step_idle_64core", |b| {
        let mut cfg = SimConfig::paper();
        // The paper config snapshots every cycle; park that so the
        // measurement isolates the cycle loop itself.
        cfg.snapshot_interval = u64::MAX;
        let mut sim = Simulator::new(cfg);
        let mut idle = noc_sim::sim::NoTraffic;
        sim.run_to_quiescence(100, &mut idle);
        b.iter(|| sim.step(&mut idle));
    });
    g.finish();
}

/// A saturated 8×8 trojan flood with an unbounded hotspot stream — the
/// allocation-bound regime the bitset wavefront datapath targets. The
/// traffic never drains, so the phase benches below sample a steady
/// state rather than a ramp.
fn flood_parts() -> (Simulator, Box<dyn TrafficSource>) {
    let mut cfg = SimConfig::paper_unprotected();
    cfg.mesh = Mesh::new(8, 8, 1);
    cfg.snapshot_interval = u64::MAX;
    let mut sim = Simulator::new(cfg);
    let victim = NodeId(4 * 8 + 4);
    let feeder = NodeId(victim.0 - 1);
    let hot = {
        let dir = xy_direction(sim.mesh(), feeder, victim);
        sim.mesh().link_out(feeder, dir).expect("adjacent")
    };
    let ht = TaspHt::new(TaspConfig::new(TargetSpec::dest((victim.0 & 0xF) as u8)));
    let faults = std::mem::replace(sim.link_faults_mut(hot), LinkFaults::healthy(hot.0 as u64));
    *sim.link_faults_mut(hot) = faults.with_trojan(ht);
    sim.arm_trojans(true);
    let mesh = sim.mesh().clone();
    let traffic = SyntheticTraffic::new(mesh, Pattern::Hotspot(vec![victim]), 0.02, 0x0D15_EA5E);
    (sim, Box::new(traffic))
}

/// Per-phase cost of the engine's hot allocation phases under the
/// saturated flood. Each bench replays whole simulator steps but
/// charges only its own phase's telemetry-clocked nanoseconds, so the
/// numbers decompose the `sim/step_loaded` wall time phase by phase
/// (VA+RC wavefront, switch allocation, batched ack/credit settlement).
fn bench_phases(c: &mut Criterion) {
    use std::time::Duration;
    let mut g = c.benchmark_group("phase");
    g.sample_size(10);
    for name in ["va_rc", "switch_alloc", "acks_credits"] {
        let idx = PHASE_LABELS
            .iter()
            .position(|l| *l == name)
            .expect("phase label");
        g.bench_function(name, |b| {
            let (mut sim, mut traffic) = flood_parts();
            sim.set_telemetry(TelemetryConfig::default());
            sim.run(500, traffic.as_mut()); // reach saturation first
            b.iter_custom(|iters| {
                let before = sim.telemetry().expect("telemetry armed").phase_total_ns()[idx];
                for _ in 0..iters {
                    sim.step(traffic.as_mut());
                    sim.drain_events();
                }
                let after = sim.telemetry().expect("telemetry armed").phase_total_ns()[idx];
                Duration::from_nanos(after - before)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_secded,
    bench_tasp,
    bench_lob,
    bench_sim_cycle,
    bench_phases
);
criterion_main!(benches);
