//! Microbenchmarks of the hot paths every experiment leans on: SECDED
//! encode/decode, TASP snooping, L-Ob transforms, and a raw simulator
//! cycle.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use htnoc_core::prelude::*;
use noc_ecc::{flip_bit, flip_bits, Secded};
use noc_mitigation::LobPlan;

fn bench_secded(c: &mut Criterion) {
    let mut g = c.benchmark_group("secded");
    let data = 0x0123_4567_89AB_CDEFu64;
    let cw = Secded::encode(data);
    g.bench_function("encode", |b| b.iter(|| Secded::encode(black_box(data))));
    g.bench_function("decode_clean", |b| b.iter(|| Secded::decode(black_box(cw))));
    let one = flip_bit(cw, 17);
    g.bench_function("decode_corrected", |b| {
        b.iter(|| Secded::decode(black_box(one)))
    });
    let two = flip_bits(cw, (1 << 3) | (1 << 40));
    g.bench_function("decode_uncorrectable", |b| {
        b.iter(|| Secded::decode(black_box(two)))
    });
    // Streaming shape of the table-driven kernel: 64 distinct words per
    // iteration, the per-flit pattern the link layer actually drives
    // (encode at launch, decode at delivery).
    let words: Vec<u64> = (0..64u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect();
    g.bench_function("encode_decode_stream64", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &w in &words {
                let cw = Secded::encode(black_box(w));
                if let noc_ecc::Decode::Clean { data } = Secded::decode(cw) {
                    acc ^= data;
                }
            }
            acc
        })
    });
    g.finish();
}

fn bench_tasp(c: &mut Criterion) {
    let mut g = c.benchmark_group("tasp");
    let mut ht = TaspHt::new(TaspConfig::new(TargetSpec::dest(9)));
    ht.set_kill_switch(true);
    let hit = Header {
        src: NodeId(0),
        dest: NodeId(9),
        vc: VcId(0),
        mem_addr: 0,
        thread: 0,
        len: 1,
    }
    .pack();
    let miss = Header {
        src: NodeId(0),
        dest: NodeId(5),
        vc: VcId(0),
        mem_addr: 0,
        thread: 0,
        len: 1,
    }
    .pack();
    let mut cycle = 0u64;
    g.bench_function("snoop_miss", |b| {
        b.iter(|| {
            cycle += 1;
            ht.snoop(cycle, black_box(miss), true)
        })
    });
    g.bench_function("snoop_hit", |b| {
        b.iter(|| {
            cycle += 1;
            ht.snoop(cycle, black_box(hit), true)
        })
    });
    g.finish();
}

fn bench_lob(c: &mut Criterion) {
    let mut g = c.benchmark_group("lob");
    let word = 0xFEED_FACE_CAFE_F00Du64;
    for (i, plan) in LobPlan::LADDER.iter().enumerate() {
        g.bench_function(&format!("apply_undo_rung{i}"), |b| {
            b.iter(|| {
                let obf = plan.apply(black_box(word), 0x1234);
                plan.undo(obf, 0x1234)
            })
        });
    }
    g.finish();
}

fn bench_sim_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    g.bench_function("step_loaded_64core", |b| {
        let mut sim = Simulator::new(SimConfig::paper());
        let mut traffic = AppModel::new(AppSpec::blackscholes(), Mesh::paper(), 7);
        sim.run(500, &mut traffic); // warm the network
        b.iter(|| sim.step(&mut traffic));
    });
    // The active-set fast path: a fully drained network where every
    // router is quiescent. Measures the per-cycle floor (activity
    // refresh + link scans), which the loaded case pays on top of.
    g.bench_function("step_idle_64core", |b| {
        let mut cfg = SimConfig::paper();
        // The paper config snapshots every cycle; park that so the
        // measurement isolates the cycle loop itself.
        cfg.snapshot_interval = u64::MAX;
        let mut sim = Simulator::new(cfg);
        let mut idle = noc_sim::sim::NoTraffic;
        sim.run_to_quiescence(100, &mut idle);
        b.iter(|| sim.step(&mut idle));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_secded,
    bench_tasp,
    bench_lob,
    bench_sim_cycle
);
criterion_main!(benches);
