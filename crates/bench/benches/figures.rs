//! One criterion bench per paper table/figure: each measures the code path
//! that regenerates it, at a reduced scale so `cargo bench` stays
//! affordable. The full-scale prints come from the `src/bin/*` harnesses.

use criterion::{criterion_group, criterion_main, Criterion};
use htnoc_core::prelude::*;
use noc_bench::{fig1, fig10, fig11, fig12, fig2, power_tables};

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_traffic_matrix", |b| {
        b.iter(|| fig1::compute(AppSpec::blackscholes(), 500, 7))
    });
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("fault_latency_point", |b| {
        b.iter(|| fig2::measure(3, fig2::FaultKind::TrojanMitigated, 2000))
    });
    g.finish();
}

fn bench_fig8_9_tables(c: &mut Criterion) {
    c.bench_function("fig8_router_pies", |b| {
        b.iter(power_tables::fig8_router_pies)
    });
    c.bench_function("fig9_target_areas", |b| b.iter(power_tables::fig9_areas));
    c.bench_function("table1_model", |b| b.iter(power_tables::table1_model));
    c.bench_function("table2_model", |b| b.iter(power_tables::table2_model));
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    let app = AppSpec::blackscholes();
    let infected = fig10::infected_for(&app, 0.05, 3);
    g.bench_function("speedup_cell_lob", |b| {
        b.iter(|| {
            let mut sc = Scenario::paper_default(app.clone(), Strategy::S2sLob)
                .with_infected(infected.clone());
            sc.warmup = 100;
            sc.inject_until = 300;
            sc.max_cycles = 4000;
            htnoc_core::run_scenario(&sc)
        })
    });
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.bench_function("backpressure_series", |b| {
        b.iter(|| fig11::compute(Strategy::Unprotected, 1, 300))
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.bench_function("tdm_panel", |b| b.iter(|| fig12::compute_tdm(300)));
    g.bench_function("lob_panel", |b| b.iter(|| fig12::compute_lob(300)));
    g.finish();
}

criterion_group!(
    benches,
    bench_fig1,
    bench_fig2,
    bench_fig8_9_tables,
    bench_fig10,
    bench_fig11,
    bench_fig12
);
criterion_main!(benches);
